//! The sharded execution engine: one host-driver + simulated-chip pair per
//! shard, each on its own worker thread, fed through batched job channels.

use crate::coalesce::{CrossingMove, MoveCoalescer};
use crate::interconnect::{DrainPolicy, Staging};
use crate::sched::BatchScheduler;
use crate::{
    ClusterError, Interconnect, InterconnectConfig, LinkFaultKind, ShardPlan, TrafficStats,
};
use pim_arch::{Backend, MicroOp, PimConfig};
use pim_driver::{Driver, DriverError, IssuedCycles, ParallelismMode, RoutineCache};
use pim_fault::{FaultInjector, LinkFault, WorkerFault};
use pim_func::{AnyBackend, AnySnapshot, BackendKind};
use pim_isa::Instruction;
use pim_sim::Profiler;
use pim_telemetry::{
    Gauge, MetricsSnapshot, MetricsSource, RequestId, RequestStats, Telemetry, TrackHandle,
};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;

/// Shard crash-recovery policy: whether the supervisor respawns dead
/// workers, and how often each worker checkpoints its simulator state.
///
/// Between checkpoints the worker keeps a bounded journal of executed
/// jobs; recovery restores the last backend snapshot ([`AnySnapshot`])
/// and replays the journal suffix, so a crash costs bounded replay
/// latency instead of a dead cluster. Checkpointing is host-side only — it never touches
/// modeled state, so modeled cycle counts are bit-identical with recovery
/// on or off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Respawn crashed workers on the next submission (on by default).
    /// When off, a dead worker leaves the shard permanently
    /// [`Disconnected`](ClusterError::Disconnected) — the pre-supervision
    /// behavior.
    pub enabled: bool,
    /// Take a fresh checkpoint once the shard has modeled at least this
    /// many cycles since the last one.
    pub checkpoint_interval_cycles: u64,
    /// Take a fresh checkpoint once the journal holds this many
    /// instructions/micro-operations, whatever the cycle budget says —
    /// this bounds both journal memory and worst-case replay latency.
    pub checkpoint_max_instructions: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: true,
            checkpoint_interval_cycles: 1_000_000,
            checkpoint_max_instructions: 4096,
        }
    }
}

/// Which [`Backend`] implementation each shard runs — uniform across the
/// cluster or selected per shard. Mixed clusters are fully supported: the
/// shared cost model keeps modeled cycles identical either way, so a
/// deployment can, say, keep one bit-accurate shard as a strictness
/// canary while the rest serve on the fast functional backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardBackends {
    /// Every shard runs the same backend kind.
    Uniform(BackendKind),
    /// One entry per shard, indexed by shard. The length must equal the
    /// cluster's shard count.
    PerShard(Vec<BackendKind>),
}

impl Default for ShardBackends {
    fn default() -> Self {
        ShardBackends::Uniform(BackendKind::BitAccurate)
    }
}

impl ShardBackends {
    /// The backend kind shard `shard` runs.
    fn kind_for(&self, shard: usize) -> BackendKind {
        match self {
            ShardBackends::Uniform(kind) => *kind,
            ShardBackends::PerShard(kinds) => kinds[shard],
        }
    }

    /// Checks the per-shard list length against the shard count.
    fn validate(&self, shards: usize) -> Result<(), ClusterError> {
        match self {
            ShardBackends::PerShard(kinds) if kinds.len() != shards => {
                Err(ClusterError::Protocol {
                    reason: format!(
                        "per-shard backend list has {} entries for {} shards",
                        kinds.len(),
                        shards
                    ),
                })
            }
            _ => Ok(()),
        }
    }
}

/// Everything configurable about a cluster, bundled so call sites name
/// only what they change ([`PimCluster::with_options`]). The positional
/// constructors ([`new`](PimCluster::new) …
/// [`with_telemetry`](PimCluster::with_telemetry)) are shorthands over
/// this.
#[derive(Clone)]
pub struct ClusterOptions {
    /// Driver parallelism mode for every shard.
    pub mode: ParallelismMode,
    /// Chip-to-chip interconnect model.
    pub interconnect: InterconnectConfig,
    /// Telemetry handle the cluster records into.
    pub telemetry: Telemetry,
    /// Crash-recovery policy.
    pub recovery: RecoveryConfig,
    /// Deterministic fault injection schedule. `None` (the default) means
    /// the injector hooks are never consulted — zero cost, bit-identical
    /// to a build without the fault machinery.
    pub fault: Option<Arc<FaultInjector>>,
    /// Backend selection per shard (bit-accurate by default).
    pub backends: ShardBackends,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            mode: ParallelismMode::default(),
            interconnect: InterconnectConfig::default(),
            telemetry: Telemetry::disabled(),
            recovery: RecoveryConfig::default(),
            fault: None,
            backends: ShardBackends::default(),
        }
    }
}

impl std::fmt::Debug for ClusterOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterOptions")
            .field("mode", &self.mode)
            .field("interconnect", &self.interconnect)
            .field("recovery", &self.recovery)
            .field("fault", &self.fault)
            .field("backends", &self.backends)
            .finish_non_exhaustive()
    }
}

/// One recoverable unit of shard work, recorded by the worker after it
/// executed successfully. Replaying the journal (in order, on top of the
/// checkpoint snapshot) reproduces the shard state at crash time.
enum JournalEntry {
    /// Macro instructions of one executed job (read results are
    /// recomputed and discarded on replay).
    Instrs(Vec<Instruction>),
    /// A raw micro-operation batch.
    Micro(Vec<MicroOp>),
    SetStrict(bool),
    ResetProfiler,
    ResetIssued,
}

/// A shard's checkpoint + bounded replay log, shared between the worker
/// (which appends and periodically re-checkpoints) and the supervisor
/// (which restores from it on revival).
struct ShardJournal {
    snapshot: AnySnapshot,
    issued: IssuedCycles,
    /// Profiler cycles at snapshot time (checkpoint-interval baseline).
    snapshot_cycles: u64,
    log: Vec<JournalEntry>,
    /// Instructions + micro-operations in `log` (checkpoint-size bound).
    logged_instrs: usize,
}

impl ShardJournal {
    /// Re-checkpoints: captures the driver's current state as the new
    /// snapshot and clears the log.
    fn checkpoint(&mut self, driver: &Driver<AnyBackend>) {
        self.snapshot = driver.backend().snapshot();
        self.issued = driver.issued();
        self.snapshot_cycles = driver.backend().profiler().cycles;
        self.log.clear();
        self.logged_instrs = 0;
    }

    /// Re-checkpoints if the journal outgrew the configured bounds.
    fn maybe_checkpoint(&mut self, driver: &Driver<AnyBackend>, rc: &RecoveryConfig) {
        let cycles = driver.backend().profiler().cycles;
        if self.logged_instrs >= rc.checkpoint_max_instructions
            || cycles.saturating_sub(self.snapshot_cycles) >= rc.checkpoint_interval_cycles
        {
            self.checkpoint(driver);
        }
    }
}

/// Telemetry snapshot of one shard.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The shard simulator's profiling counters (chip-side cycles).
    pub profiler: Profiler,
    /// Driver-issued cycle counters (logic vs total) of this shard.
    pub issued: IssuedCycles,
    /// Routine-cache hits of this shard's driver.
    pub cache_hits: u64,
    /// Routine-cache misses of this shard's driver.
    pub cache_misses: u64,
    /// Host threads the shard simulator uses internally.
    pub sim_threads: usize,
}

/// Aggregated telemetry across every shard — the production observability
/// for the §V-B "driver is not the bottleneck" claim at cluster scale.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Interconnect/scheduler traffic: cross-chip messages and words moved,
    /// modeled link cycles, barriers hit and shard queues drained by them.
    pub traffic: TrafficStats,
    /// Shard workers the supervisor respawned after a crash.
    pub worker_restarts: u64,
    /// Instructions/micro-operations replayed from journals during
    /// recovery (the work between the last checkpoint and the crash).
    pub replayed_instructions: u64,
}

impl ClusterStats {
    /// Driver-issued cycles summed over shards.
    pub fn issued(&self) -> IssuedCycles {
        self.shards.iter().map(|s| s.issued).sum()
    }

    /// Routine-cache `(hits, misses)` summed over shards.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shards
            .iter()
            .fold((0, 0), |(h, m), s| (h + s.cache_hits, m + s.cache_misses))
    }

    /// Chip cycles summed over shards (total simulated work).
    pub fn total_cycles(&self) -> u64 {
        self.shards.iter().map(|s| s.profiler.cycles).sum()
    }

    /// Chip cycles of the busiest shard — the wall-clock latency of the
    /// cluster under the chips-run-in-parallel model.
    pub fn critical_path_cycles(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.profiler.cycles)
            .max()
            .unwrap_or(0)
    }

    /// Modeled end-to-end latency: the busiest chip plus the interconnect's
    /// link cycles (an upper bound — transfers that overlapped untouched
    /// shards' streaming are charged serially here).
    pub fn modeled_latency_cycles(&self) -> u64 {
        self.critical_path_cycles() + self.traffic.link_cycles
    }

    /// A merged profiler: operation/gate/move counters are summed across
    /// shards ([`Profiler::absorb`]), while `cycles` holds the critical
    /// path (chips execute concurrently, so wall-clock latency is the
    /// busiest shard's).
    pub fn merged_profiler(&self) -> Profiler {
        let mut out = Profiler::new();
        for s in &self.shards {
            out.absorb(&s.profiler);
        }
        out.cycles = self.critical_path_cycles();
        out
    }
}

impl MetricsSource for ClusterStats {
    fn fill_metrics(&self, snap: &mut MetricsSnapshot) {
        // The merged profiler carries the chip-side sim.* metrics; cycles
        // there is the critical path, so report the summed total separately.
        self.merged_profiler().fill_metrics(snap);
        snap.set_counter("cluster.total_cycles", self.total_cycles());
        snap.set_counter("cluster.critical_path_cycles", self.critical_path_cycles());
        snap.set_counter(
            "cluster.modeled_latency_cycles",
            self.modeled_latency_cycles(),
        );
        let issued = self.issued();
        snap.set_counter("cluster.issued_cycles", issued.total);
        snap.set_counter("cluster.issued_logic_cycles", issued.logic);
        let (hits, misses) = self.cache_stats();
        snap.set_counter("cluster.cache_hits", hits);
        snap.set_counter("cluster.cache_misses", misses);
        snap.set_gauge("cluster.shards", self.shards.len() as i64);
        snap.set_counter("cluster.worker_restarts", self.worker_restarts);
        snap.set_counter("cluster.replayed_instructions", self.replayed_instructions);
        self.traffic.fill_metrics(snap);
    }
}

/// Host-side fold applied to gathered shard values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Summation (wrapping for int32).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Folds float values in order. Returns `None` for an empty input.
pub fn fold_f32(op: Combine, values: impl IntoIterator<Item = f32>) -> Option<f32> {
    values.into_iter().reduce(|a, b| match op {
        Combine::Sum => a + b,
        Combine::Min => a.min(b),
        Combine::Max => a.max(b),
    })
}

/// Folds int values in order (wrapping sum). Returns `None` for an empty
/// input.
pub fn fold_i32(op: Combine, values: impl IntoIterator<Item = i32>) -> Option<i32> {
    values.into_iter().reduce(|a, b| match op {
        Combine::Sum => a.wrapping_add(b),
        Combine::Min => a.min(b),
        Combine::Max => a.max(b),
    })
}

/// A global memory location: `(warp, row, register)` in cluster-wide warp
/// numbering. [`GlobalWrite`] is the named, value-carrying counterpart used
/// by [`PimCluster::scatter`].
pub type GlobalLoc = (u32, u32, u8);

/// A global write: the word to deposit at one cluster-wide memory cell.
///
/// Field-for-field parity with [`GlobalLoc`] — `(warp, row, reg)` address a
/// cell exactly as a gather location does — plus the `value` to store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalWrite {
    /// Global warp (cluster-wide numbering).
    pub warp: u32,
    /// Row within the warp.
    pub row: u32,
    /// Register to write.
    pub reg: u8,
    /// Raw word value (for floats, the IEEE-754 bit pattern).
    pub value: u32,
}

impl GlobalWrite {
    /// Builds a write in [`GlobalLoc`] field order plus the value.
    pub fn new(warp: u32, row: u32, reg: u8, value: u32) -> Self {
        GlobalWrite {
            warp,
            row,
            reg,
            value,
        }
    }

    /// The cell this write addresses, as a gather location.
    pub fn loc(&self) -> GlobalLoc {
        (self.warp, self.row, self.reg)
    }
}

type ShardReply = Result<Vec<Option<u32>>, ClusterError>;

/// Shared completion slot between a [`JobTicket`] and the shard worker
/// executing its batch: the worker deposits the result, notifies blocking
/// waiters ([`JobTicket::wait`]), and fires the waker a pending poll
/// registered ([`JobTicket` as `Future`]).
#[derive(Debug, Default)]
struct TicketShared {
    state: Mutex<TicketState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct TicketState {
    result: Option<ShardReply>,
    waker: Option<Waker>,
}

impl TicketShared {
    fn deliver(&self, result: ShardReply) {
        let waker = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.result = Some(result);
            self.cv.notify_all();
            st.waker.take()
        };
        // Outside the lock: waking may immediately poll the ticket.
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Worker-side handle of a completion slot. Completing consumes it; if it
/// is dropped un-completed (worker death, channel teardown mid-job), the
/// drop guard delivers [`ClusterError::WorkerCrashed`] — a typed transient
/// error — so no waiter hangs.
struct Completion {
    shard: usize,
    shared: Arc<TicketShared>,
    /// `cluster.jobs_inflight` — incremented at submission, decremented
    /// exactly once here on delivery, whichever path delivers (normal
    /// completion or the crash-path drop guard).
    inflight: Gauge,
    done: bool,
}

impl Completion {
    fn complete(mut self, result: ShardReply) {
        self.done = true;
        self.inflight.add(-1);
        self.shared.deliver(result);
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if !self.done {
            self.inflight.add(-1);
            self.shared
                .deliver(Err(ClusterError::WorkerCrashed { shard: self.shard }));
        }
    }
}

/// One client batch tagged with the request it belongs to — the unit the
/// serving gateway submits through [`PimCluster::submit_batch_tagged`] so
/// shard workers can attribute their modeled cycles to the request.
#[derive(Debug, Clone)]
pub struct TaggedBatch {
    /// The request this batch executes for ([`RequestId::UNTAGGED`] for
    /// background work).
    pub request: RequestId,
    /// The batch's non-read instructions, in program order.
    pub instrs: Vec<Instruction>,
}

enum Job {
    /// Execute macro-instruction segments in order, collecting
    /// per-instruction results (values for reads, `None` otherwise) across
    /// all segments. Segment boundaries exist only for telemetry — each
    /// segment's modeled cycles are attributed to its [`RequestId`];
    /// execution is one FIFO stream either way.
    Macro {
        segments: Vec<(RequestId, Vec<Instruction>)>,
        reply: Completion,
    },
    /// Execute a batch of raw micro-operations through the shard backend's
    /// [`pim_arch::Backend::execute_batch`] (subject to its no-read
    /// protocol).
    Micro {
        ops: Vec<MicroOp>,
        reply: Sender<Result<(), ClusterError>>,
    },
    Stats {
        reply: Sender<ShardStats>,
    },
    ResetProfiler {
        reply: Sender<()>,
    },
    ResetIssued {
        reply: Sender<()>,
    },
    SetStrict {
        strict: bool,
        reply: Sender<()>,
    },
}

/// One shard worker's supervision state. Behind a `Mutex` so the
/// supervisor can swap in a respawned worker from any client thread
/// ([`PimCluster::send`] detects death and revives in place).
struct WorkerSlot {
    tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// A pending batch submitted to one shard.
///
/// The ticket is both a blocking handle ([`wait`](JobTicket::wait)) and a
/// pollable [`Future`]: polling registers the task's waker in the
/// completion slot, and the shard worker fires it the moment the batch
/// finishes — no spinning, no blocked host thread. This is what lets one
/// host thread keep many client batches in flight (see the `pim-serve`
/// gateway).
#[derive(Debug)]
pub struct JobTicket {
    shard: usize,
    shared: Arc<TicketShared>,
}

impl JobTicket {
    /// The shard this job was submitted to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Whether the shard worker has completed the batch (the result is
    /// ready to collect without blocking).
    pub fn is_done(&self) -> bool {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .is_some()
    }

    /// Blocks until the batch completes, returning per-instruction results
    /// (the read value for [`Instruction::Read`], `None` otherwise).
    ///
    /// # Errors
    ///
    /// Returns the first shard error, or [`ClusterError::Disconnected`] if
    /// the worker died.
    pub fn wait(self) -> Result<Vec<Option<u32>>, ClusterError> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = st.result.take() {
                return result;
            }
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Future for JobTicket {
    type Output = ShardReply;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(result) = st.result.take() {
            return Poll::Ready(result);
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// A set of in-flight per-shard jobs treated as one unit of work — the
/// asynchronous counterpart of submit-all-then-wait. Produced by
/// [`PimCluster::submit_batch`] and [`PimCluster::submit_scatter`].
#[derive(Debug, Default)]
pub struct JobSet {
    pending: Vec<JobTicket>,
    failed: Option<ClusterError>,
}

impl JobSet {
    fn new(tickets: Vec<JobTicket>) -> Self {
        JobSet {
            pending: tickets,
            failed: None,
        }
    }

    /// An already-completed set (no shard work was needed).
    pub fn ready() -> Self {
        JobSet::default()
    }

    /// Blocks until every job completes.
    ///
    /// # Errors
    ///
    /// Returns the first shard error.
    pub fn wait(mut self) -> Result<(), ClusterError> {
        for ticket in self.pending.drain(..) {
            ticket.wait()?;
        }
        Ok(())
    }
}

impl Future for JobSet {
    type Output = Result<(), ClusterError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut still_pending = Vec::with_capacity(this.pending.len());
        for mut ticket in this.pending.drain(..) {
            match Pin::new(&mut ticket).poll(cx) {
                Poll::Ready(Ok(_)) => {}
                Poll::Ready(Err(e)) => {
                    if this.failed.is_none() {
                        this.failed = Some(e);
                    }
                }
                Poll::Pending => still_pending.push(ticket),
            }
        }
        this.pending = still_pending;
        if this.pending.is_empty() {
            Poll::Ready(match this.failed.take() {
                None => Ok(()),
                Some(e) => Err(e),
            })
        } else {
            Poll::Pending
        }
    }
}

/// An in-flight cross-shard gather: per-shard read jobs plus the index
/// mapping that reassembles their values in input order. Produced by
/// [`PimCluster::submit_gather`].
#[derive(Debug)]
pub struct GatherTicket {
    parts: Vec<(Vec<usize>, JobTicket)>,
    out: Vec<u32>,
    failed: Option<ClusterError>,
}

impl GatherTicket {
    /// Deposits one shard's read values at their input positions. A shard
    /// that lost its worker mid-gather can come back short or with holes;
    /// that is a typed [`Protocol`](ClusterError::Protocol) error for the
    /// caller, never a panic.
    fn place(
        out: &mut [u32],
        indices: Vec<usize>,
        values: Vec<Option<u32>>,
    ) -> Result<(), ClusterError> {
        if values.len() != indices.len() {
            return Err(ClusterError::Protocol {
                reason: format!(
                    "gather returned {} values for {} reads",
                    values.len(),
                    indices.len()
                ),
            });
        }
        for (i, v) in indices.into_iter().zip(values) {
            out[i] = v.ok_or_else(|| ClusterError::Protocol {
                reason: "gather read returned no value".into(),
            })?;
        }
        Ok(())
    }

    /// Blocks until every shard's reads complete, returning the gathered
    /// values in input order.
    ///
    /// # Errors
    ///
    /// Returns the first shard error.
    pub fn wait(mut self) -> Result<Vec<u32>, ClusterError> {
        for (indices, ticket) in self.parts.drain(..) {
            let values = ticket.wait()?;
            Self::place(&mut self.out, indices, values)?;
        }
        Ok(std::mem::take(&mut self.out))
    }
}

impl Future for GatherTicket {
    type Output = Result<Vec<u32>, ClusterError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut still_pending = Vec::with_capacity(this.parts.len());
        for (indices, mut ticket) in this.parts.drain(..) {
            match Pin::new(&mut ticket).poll(cx) {
                Poll::Ready(Ok(values)) => {
                    if let Err(e) = Self::place(&mut this.out, indices, values) {
                        if this.failed.is_none() {
                            this.failed = Some(e);
                        }
                    }
                }
                Poll::Ready(Err(e)) => {
                    if this.failed.is_none() {
                        this.failed = Some(e);
                    }
                }
                Poll::Pending => still_pending.push((indices, ticket)),
            }
        }
        this.parts = still_pending;
        if this.parts.is_empty() {
            Poll::Ready(match this.failed.take() {
                None => Ok(std::mem::take(&mut this.out)),
                Some(e) => Err(e),
            })
        } else {
            Poll::Pending
        }
    }
}

/// Outcome of [`PimCluster::submit_batch`]: either every instruction was
/// shard-local and the per-shard jobs are now in flight, or the batch
/// contained a chip-crossing move (which needs host staging and scheduler
/// barriers) and was executed inline before returning.
#[derive(Debug)]
pub enum Submission {
    /// Per-shard jobs in flight; await or wait the [`JobSet`].
    Tickets(JobSet),
    /// The batch required cross-chip transfers and already executed
    /// synchronously (a completed submission).
    Inline,
}

impl Submission {
    /// Blocks until the submission completes (no-op for [`Inline`]
    /// submissions, which completed before they were returned).
    ///
    /// # Errors
    ///
    /// Returns the first shard error.
    pub fn wait(self) -> Result<(), ClusterError> {
        match self {
            Submission::Tickets(set) => set.wait(),
            Submission::Inline => Ok(()),
        }
    }
}

/// A sharded multi-chip PIM execution engine.
///
/// `N` shards, each a [`Driver`] over its own chip backend (bit-accurate
/// simulator or vectorized functional backend, per [`ShardBackends`])
/// running on a dedicated worker thread, present one flat address space of
/// `N × crossbars` warps. Logical instructions addressed to global warps are
/// split along shard boundaries (see [`ShardPlan`]) and stream to all
/// affected shards concurrently; inter-warp moves that cross a chip
/// boundary go over a modeled chip-to-chip [`Interconnect`]: crossing word
/// pairs are batched into one message per `(source, destination)` shard
/// pair, charged a configurable per-link cycle cost, and only the shards a
/// transfer touches are drained — untouched shards keep streaming (the
/// drain rule; see the crate-level docs).
///
/// All methods take `&self`; the cluster may be driven from many client
/// threads at once (each shard serializes its own job queue).
///
/// # Example
///
/// ```
/// use pim_arch::PimConfig;
/// use pim_cluster::PimCluster;
/// use pim_isa::{Instruction, ThreadRange};
///
/// # fn main() -> Result<(), pim_cluster::ClusterError> {
/// let cluster = PimCluster::new(PimConfig::small().with_crossbars(4), 4)?;
/// assert_eq!(cluster.logical_config().crossbars, 16);
///
/// // Write to a warp on shard 2 through the flat address space.
/// cluster.execute(&Instruction::Write {
///     reg: 0,
///     value: 42,
///     target: ThreadRange::single(9, 5),
/// })?;
/// let got = cluster.execute(&Instruction::Read { reg: 0, warp: 9, row: 5 })?;
/// assert_eq!(got, Some(42));
/// # Ok(())
/// # }
/// ```
pub struct PimCluster {
    plan: ShardPlan,
    shard_cfg: PimConfig,
    logical_cfg: PimConfig,
    interconnect: Interconnect,
    workers: Vec<Mutex<WorkerSlot>>,
    /// Per-shard checkpoint + replay journals; `None` when recovery is
    /// disabled (no snapshot memory, no journaling work).
    journals: Vec<Option<Arc<Mutex<ShardJournal>>>>,
    telemetry: Telemetry,
    /// Trace track of host-staged interconnect bursts.
    ic_track: TrackHandle,
    /// `cluster.jobs_inflight` — macro jobs queued to or executing on
    /// shard workers (the source-level queue/in-flight gauge).
    jobs_inflight: Gauge,
    mode: ParallelismMode,
    shared_cache: RoutineCache,
    recovery: RecoveryConfig,
    fault: Option<Arc<FaultInjector>>,
    /// The backend kind each shard runs (fixed at construction; revival
    /// rebuilds the same kind).
    backend_kinds: Vec<BackendKind>,
    /// Workers respawned after a crash.
    restarts: AtomicU64,
    /// Instructions replayed from journals during recovery.
    replayed: AtomicU64,
}

impl std::fmt::Debug for PimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimCluster")
            .field("shards", &self.plan.shards())
            .field("shard_config", &self.shard_cfg)
            .finish()
    }
}

impl PimCluster {
    /// Spawns a cluster of `shards` chips of geometry `cfg` with the default
    /// (partition-parallel) driver mode.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero shard count or an invalid configuration.
    pub fn new(cfg: PimConfig, shards: usize) -> Result<Self, ClusterError> {
        PimCluster::with_mode(cfg, shards, ParallelismMode::default())
    }

    /// Spawns a cluster with an explicit driver parallelism mode.
    ///
    /// Each shard backend is pinned to a single internal thread
    /// ([`AnyBackend::set_threads`]) — parallelism comes from the shard
    /// workers themselves, so the host is not oversubscribed.
    ///
    /// Every shard driver receives a [`RoutineCache::share`] of one
    /// cluster-wide compilation map: a routine compiles once per cluster
    /// (the first shard to need it misses; the rest hit), while hit/miss
    /// telemetry stays per shard in [`ShardStats`].
    ///
    /// # Errors
    ///
    /// See [`new`](PimCluster::new).
    pub fn with_mode(
        cfg: PimConfig,
        shards: usize,
        mode: ParallelismMode,
    ) -> Result<Self, ClusterError> {
        PimCluster::with_interconnect(cfg, shards, mode, InterconnectConfig::default())
    }

    /// Spawns a cluster with explicit driver parallelism and chip-to-chip
    /// interconnect models. The interconnect's link width/latency set the
    /// modeled cycle cost of cross-chip transfers ([`TrafficStats`]); its
    /// staging and drain policies select the transfer batching and the
    /// scheduler's barrier scope (the defaults — batched bursts, drain only
    /// touched shards — are what production wants; the per-word/global
    /// alternatives exist for A/B measurement).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidInterconnect`] for an unusable link
    /// model, plus everything [`new`](PimCluster::new) returns.
    pub fn with_interconnect(
        cfg: PimConfig,
        shards: usize,
        mode: ParallelismMode,
        icfg: InterconnectConfig,
    ) -> Result<Self, ClusterError> {
        PimCluster::with_telemetry(cfg, shards, mode, icfg, Telemetry::disabled())
    }

    /// Spawns a cluster recording into an explicit [`Telemetry`] handle:
    /// each shard worker gets its own `shard-{i}` trace track (spans on the
    /// shard's modeled cycle timeline, attributed per request), and
    /// host-staged interconnect bursts record onto `cluster/interconnect`.
    /// The handle may be shared with (and flipped on/off by) the layers
    /// above; recording never affects execution.
    ///
    /// # Errors
    ///
    /// See [`with_interconnect`](PimCluster::with_interconnect).
    pub fn with_telemetry(
        cfg: PimConfig,
        shards: usize,
        mode: ParallelismMode,
        icfg: InterconnectConfig,
        telemetry: Telemetry,
    ) -> Result<Self, ClusterError> {
        PimCluster::with_options(
            cfg,
            shards,
            ClusterOptions {
                mode,
                interconnect: icfg,
                telemetry,
                ..ClusterOptions::default()
            },
        )
    }

    /// Spawns a cluster from a full [`ClusterOptions`] bundle — the one
    /// constructor every shorthand delegates to. This is where crash
    /// recovery ([`RecoveryConfig`]) and deterministic fault injection
    /// ([`FaultInjector`]) are configured.
    ///
    /// # Errors
    ///
    /// See [`with_interconnect`](PimCluster::with_interconnect).
    pub fn with_options(
        cfg: PimConfig,
        shards: usize,
        options: ClusterOptions,
    ) -> Result<Self, ClusterError> {
        let ClusterOptions {
            mode,
            interconnect: icfg,
            telemetry,
            recovery,
            fault,
            backends,
        } = options;
        icfg.validate()
            .map_err(|reason| ClusterError::InvalidInterconnect { reason })?;
        let plan = ShardPlan::new(&cfg, shards)?;
        backends.validate(shards)?;
        let backend_kinds: Vec<BackendKind> =
            (0..shards).map(|shard| backends.kind_for(shard)).collect();
        let logical_cfg = cfg.clone().with_crossbars(cfg.crossbars * shards);
        let shared_cache = RoutineCache::new();
        let mut workers = Vec::with_capacity(shards);
        let mut journals = Vec::with_capacity(shards);
        for (shard, &kind) in backend_kinds.iter().enumerate() {
            let mut backend =
                AnyBackend::new(kind, cfg.clone()).map_err(|e| ClusterError::Shard {
                    shard,
                    source: DriverError::from(e),
                })?;
            backend.set_threads(1);
            let driver = Driver::with_cache(backend, mode, shared_cache.share());
            let journal = recovery.enabled.then(|| {
                Arc::new(Mutex::new(ShardJournal {
                    snapshot: driver.backend().snapshot(),
                    issued: driver.issued(),
                    snapshot_cycles: 0,
                    log: Vec::new(),
                    logged_instrs: 0,
                }))
            });
            let (tx, handle) = spawn_worker(
                shard,
                driver,
                &telemetry,
                journal.clone(),
                fault.clone(),
                recovery.clone(),
            );
            workers.push(Mutex::new(WorkerSlot {
                tx: Some(tx),
                handle: Some(handle),
            }));
            journals.push(journal);
        }
        let ic_track = telemetry.track("cluster/interconnect");
        let jobs_inflight = telemetry.metrics().gauge("cluster.jobs_inflight");
        Ok(PimCluster {
            plan,
            shard_cfg: cfg,
            logical_cfg,
            interconnect: Interconnect::new(icfg),
            workers,
            journals,
            telemetry,
            ic_track,
            jobs_inflight,
            mode,
            shared_cache,
            recovery,
            fault,
            backend_kinds,
            restarts: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
        })
    }

    /// The telemetry handle this cluster records into (disabled by default;
    /// see [`with_telemetry`](PimCluster::with_telemetry)).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The modeled chip-to-chip interconnect (configuration and live
    /// traffic counters).
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Number of shards (chips).
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// The partition plan mapping global warps/elements to shards.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Geometry of each individual chip.
    pub fn shard_config(&self) -> &PimConfig {
        &self.shard_cfg
    }

    /// The aggregate geometry the cluster presents: the per-chip
    /// configuration with `shards × crossbars` warps.
    pub fn logical_config(&self) -> &PimConfig {
        &self.logical_cfg
    }

    /// Queues one job to a shard worker, reviving the worker first if it
    /// died. The fast path is one uncontended lock and a channel send; the
    /// supervisor only runs when a send fails (the worker's receiver is
    /// gone — it crashed or was fault-injected to crash).
    fn send(&self, shard: usize, job: Job) -> Result<(), ClusterError> {
        let slot = self.workers.get(shard).ok_or(ClusterError::ShardIndex {
            shard,
            shards: self.workers.len(),
        })?;
        let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
        let job = match &slot.tx {
            // `SendError` hands the unsent job back; recover it for the
            // retry after revival.
            Some(tx) => match tx.send(job) {
                Ok(()) => return Ok(()),
                Err(failed) => failed.0,
            },
            None => job,
        };
        self.revive(&mut slot, shard)?;
        slot.tx
            .as_ref()
            .expect("revive installs a sender on success")
            .send(job)
            .map_err(|_| ClusterError::WorkerCrashed { shard })
    }

    /// Respawns a dead shard worker: reaps the old thread, rebuilds the
    /// shard simulator from the journal's checkpoint, replays the journal
    /// suffix, re-checkpoints, and spawns a fresh worker thread. Called
    /// with the shard's slot lock held.
    ///
    /// # Errors
    ///
    /// [`Disconnected`](ClusterError::Disconnected) when recovery is
    /// disabled; [`RecoveryFailed`](ClusterError::RecoveryFailed) when
    /// replay fails (the shard stays down).
    fn revive(&self, slot: &mut WorkerSlot, shard: usize) -> Result<(), ClusterError> {
        slot.tx = None;
        if let Some(h) = slot.handle.take() {
            // A crashing worker's completion guards can wake a client that
            // pumps follow-up work on the dying thread itself (the serving
            // gateway does); reviving from there must not join the current
            // thread — that deadlocks. The dying thread is past its last
            // touch of shard state (state is rebuilt from the journal), so
            // detaching it is safe.
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
        let journal = match &self.journals[shard] {
            Some(j) if self.recovery.enabled => Arc::clone(j),
            _ => return Err(ClusterError::Disconnected { shard }),
        };
        let mut backend = AnyBackend::new(self.backend_kinds[shard], self.shard_cfg.clone())
            .map_err(|e| ClusterError::RecoveryFailed {
                shard,
                reason: e.to_string(),
            })?;
        backend.set_threads(1);
        let mut driver = {
            let j = journal.lock().unwrap_or_else(|e| e.into_inner());
            backend.restore(&j.snapshot);
            let mut driver = Driver::with_cache(backend, self.mode, self.shared_cache.share());
            driver.restore_issued(j.issued);
            let checkpoint_cycles = driver.backend().profiler().cycles;
            let mut replayed = 0u64;
            for entry in &j.log {
                match entry {
                    JournalEntry::Instrs(instrs) => {
                        for instr in instrs {
                            driver
                                .execute(instr)
                                .map_err(|e| ClusterError::RecoveryFailed {
                                    shard,
                                    reason: format!("replay failed: {e}"),
                                })?;
                        }
                        replayed += instrs.len() as u64;
                    }
                    JournalEntry::Micro(ops) => {
                        driver.backend_mut().execute_batch(ops).map_err(|e| {
                            ClusterError::RecoveryFailed {
                                shard,
                                reason: format!("replay failed: {e}"),
                            }
                        })?;
                        driver.invalidate_masks();
                        replayed += ops.len() as u64;
                    }
                    JournalEntry::SetStrict(strict) => driver.backend_mut().set_strict(*strict),
                    JournalEntry::ResetProfiler => {
                        driver.backend_mut().reset_profiler();
                        driver.reset_cache_stats();
                    }
                    JournalEntry::ResetIssued => driver.reset_issued(),
                }
            }
            self.replayed.fetch_add(replayed, Ordering::Relaxed);
            // Replay brings the profiler back to its pre-crash value, but
            // on the wall timeline the replayed span executed twice — once
            // before the crash (already counted, then rolled back by the
            // restore, then re-counted by the replay) and once during
            // recovery. Charge the recovery pass as a stall so degraded
            // runs model the real throughput cost of a crash.
            let replay_span = driver
                .backend()
                .profiler()
                .cycles
                .saturating_sub(checkpoint_cycles);
            driver.backend_mut().stall(replay_span);
            driver
        };
        // Fold the replayed suffix into a fresh checkpoint so a second
        // crash never replays the same work twice.
        journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .checkpoint(&driver);
        driver.invalidate_masks();
        let (tx, handle) = spawn_worker(
            shard,
            driver,
            &self.telemetry,
            Some(journal),
            self.fault.clone(),
            self.recovery.clone(),
        );
        slot.tx = Some(tx);
        slot.handle = Some(handle);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The fault injector this cluster consults, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Shard workers respawned after a crash so far.
    pub fn worker_restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Instructions/micro-operations replayed from journals during
    /// recovery so far.
    pub fn replayed_instructions(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Submits a batch of *local* (shard-addressed) macro-instructions to
    /// one shard and returns immediately; many submissions to different
    /// shards (or the same shard) proceed concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardIndex`] or
    /// [`ClusterError::Disconnected`]; execution errors surface from
    /// [`JobTicket::wait`].
    pub fn submit(
        &self,
        shard: usize,
        instrs: Vec<Instruction>,
    ) -> Result<JobTicket, ClusterError> {
        self.submit_request(shard, RequestId::UNTAGGED, instrs)
    }

    /// [`submit`](PimCluster::submit) with the batch attributed to one
    /// request: the shard worker's execution span (and its modeled cycles)
    /// record against `request` when telemetry is enabled.
    pub fn submit_request(
        &self,
        shard: usize,
        request: RequestId,
        instrs: Vec<Instruction>,
    ) -> Result<JobTicket, ClusterError> {
        self.submit_segments(shard, vec![(request, instrs)])
    }

    /// Submits one shard job of per-request instruction segments (the
    /// gateway's coalesced groups carry several requests in one job).
    fn submit_segments(
        &self,
        shard: usize,
        segments: Vec<(RequestId, Vec<Instruction>)>,
    ) -> Result<JobTicket, ClusterError> {
        let shared = Arc::new(TicketShared::default());
        self.jobs_inflight.add(1);
        let reply = Completion {
            shard,
            shared: Arc::clone(&shared),
            inflight: self.jobs_inflight.clone(),
            done: false,
        };
        self.send(shard, Job::Macro { segments, reply })?;
        Ok(JobTicket { shard, shared })
    }

    /// Executes one *logical* macro-instruction addressed in global warp
    /// space, splitting it across the affected shards and blocking until
    /// all of them finish. Returns the value for [`Instruction::Read`].
    ///
    /// # Errors
    ///
    /// Returns validation errors against the aggregate geometry and shard
    /// execution errors.
    pub fn execute(&self, instr: &Instruction) -> Result<Option<u32>, ClusterError> {
        match instr {
            Instruction::Read { reg, warp, row } => {
                instr.validate(&self.logical_cfg)?;
                let shard = self.plan.shard_of_warp(*warp);
                let local = Instruction::Read {
                    reg: *reg,
                    warp: self.plan.local_warp(*warp),
                    row: *row,
                };
                let out = self.submit(shard, vec![local])?.wait()?;
                Ok(out[0])
            }
            // All non-read instructions share the batched routing, so the
            // shard-splitting rules live in exactly one place.
            _ => {
                self.execute_batch(std::slice::from_ref(instr))?;
                Ok(None)
            }
        }
    }

    /// Executes a sequence of non-read logical instructions, streaming
    /// shard-local work to all shards concurrently. Consecutive
    /// instructions accumulate into per-shard queues; an inter-warp move
    /// that crosses a chip boundary drains only the shards it touches
    /// (source + destination warp owners), while every untouched shard
    /// keeps streaming its queued instructions concurrently with the
    /// transfer (the drain rule; see the crate-level docs —
    /// [`DrainPolicy::Global`] restores the PR-1 all-shard barrier for A/B
    /// measurement).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Protocol`] for reads (which return data and
    /// must go through [`execute`](PimCluster::execute)), plus validation
    /// and shard errors.
    pub fn execute_batch(&self, instrs: &[Instruction]) -> Result<(), ClusterError> {
        self.validate_batch(instrs)?;
        self.execute_batch_validated(instrs, RequestId::UNTAGGED)
    }

    /// Validates a whole non-read batch before anything is queued: a
    /// validation or protocol error must mean *nothing* ran (a mid-batch
    /// failure would otherwise leave earlier instructions applied on some
    /// shards and discard ones still queued).
    fn validate_batch(&self, instrs: &[Instruction]) -> Result<(), ClusterError> {
        for instr in instrs {
            instr.validate(&self.logical_cfg)?;
            if matches!(instr, Instruction::Read { .. }) {
                return Err(ClusterError::Protocol {
                    reason: "read instructions cannot be batched (they return data)".into(),
                });
            }
        }
        Ok(())
    }

    /// Splits one validated logical instruction into its shard-local pieces
    /// (emitted through `sink` as `(shard, local instruction)` pairs) and
    /// returns the chip-crossing remainder of a `MoveWarps`, if any — the
    /// one routing decision [`execute_batch`](PimCluster::execute_batch)
    /// and [`submit_batch`](PimCluster::submit_batch) share.
    fn split_local(
        &self,
        instr: &Instruction,
        mut sink: impl FnMut(usize, Instruction),
    ) -> Option<CrossingMove> {
        match instr {
            Instruction::Read { .. } => unreachable!("rejected by the validation pass"),
            Instruction::RType {
                op,
                dtype,
                dst,
                srcs,
                target,
            } => {
                for (s, t) in self.plan.split_target(target) {
                    sink(
                        s,
                        Instruction::RType {
                            op: *op,
                            dtype: *dtype,
                            dst: *dst,
                            srcs: *srcs,
                            target: t,
                        },
                    );
                }
                None
            }
            Instruction::Write { reg, value, target } => {
                for (s, t) in self.plan.split_target(target) {
                    sink(
                        s,
                        Instruction::Write {
                            reg: *reg,
                            value: *value,
                            target: t,
                        },
                    );
                }
                None
            }
            Instruction::MoveRows {
                src,
                dst,
                src_rows,
                dst_rows,
                warps,
            } => {
                for (s, w) in self.plan.split_warps(warps) {
                    sink(
                        s,
                        Instruction::MoveRows {
                            src: *src,
                            dst: *dst,
                            src_rows: *src_rows,
                            dst_rows: *dst_rows,
                            warps: w,
                        },
                    );
                }
                None
            }
            Instruction::MoveWarps {
                src,
                dst,
                row_src,
                row_dst,
                warps,
                dist,
            } => {
                let route = self.plan.route_move_warps(warps, *dist);
                for &(s, w) in &route.local {
                    sink(
                        s,
                        Instruction::MoveWarps {
                            src: *src,
                            dst: *dst,
                            row_src: *row_src,
                            row_dst: *row_dst,
                            warps: w,
                            dist: *dist,
                        },
                    );
                }
                CrossingMove::new(route, warps, *dist, *src, *dst, *row_src, *row_dst)
            }
        }
    }

    /// The batch executor behind [`execute_batch`](PimCluster::execute_batch):
    /// streams shard-local work through the [`BatchScheduler`] while the
    /// [`MoveCoalescer`] accumulates the current run of compatible crossing
    /// moves. Any instruction that cannot join the run — a different
    /// distance, a data hazard, or simply not a crossing move — flushes the
    /// run *before* it is enqueued, so shard-visible effects keep
    /// instruction-stream order. Under [`Coalesce::Off`](crate::Coalesce)
    /// every run holds one move and this degenerates to the per-move PR-3
    /// path.
    fn execute_batch_validated(
        &self,
        instrs: &[Instruction],
        request: RequestId,
    ) -> Result<(), ClusterError> {
        let mut sched = BatchScheduler::new(self, request);
        let mut coalescer = MoveCoalescer::new(self.interconnect.config().coalesce);
        let mut parts: Vec<(usize, Instruction)> = Vec::new();
        for instr in instrs {
            if coalescer.is_empty() {
                // No pending run: shard-local parts sink straight into the
                // scheduler (the pre-coalescer fast path — batches without
                // crossing moves pay no buffering at all), and a crossing
                // move starts a fresh run.
                if let Some(mv) = self.split_local(instr, |s, i| sched.enqueue(s, i)) {
                    coalescer.push(mv);
                }
                continue;
            }
            // A run is pending: hold the split back until we know whether
            // this instruction joins it, so a flush happens *before* an
            // incompatible instruction's parts are enqueued.
            parts.clear();
            let cross = self.split_local(instr, |s, i| parts.push((s, i)));
            let flush_first = match &cross {
                Some(mv) => !coalescer.accepts(mv),
                None => true,
            };
            if flush_first {
                self.flush_run(&mut sched, &mut coalescer, request)?;
            }
            for (s, i) in parts.drain(..) {
                sched.enqueue(s, i);
            }
            if let Some(mv) = cross {
                coalescer.push(mv);
            }
        }
        self.flush_run(&mut sched, &mut coalescer, request)?;
        sched.finish()
    }

    /// Flushes the coalescer's current run: one barrier over the union of
    /// the shards the run touches, then one bulk transfer staging every
    /// crossing pair of every member (under [`Staging::Batched`]: one
    /// gathered read burst and one scattered write burst per
    /// `(source, destination)` shard pair for the whole run).
    fn flush_run(
        &self,
        sched: &mut BatchScheduler<'_>,
        coalescer: &mut MoveCoalescer,
        request: RequestId,
    ) -> Result<(), ClusterError> {
        let run = coalescer.take();
        if run.is_empty() {
            return Ok(());
        }
        let touched = match self.interconnect.config().drain {
            DrainPolicy::Touched => MoveCoalescer::touched_shards(&run, &self.plan),
            DrainPolicy::Global => vec![true; self.shards()],
        };
        self.interconnect.record_barrier(sched.busy(&touched));
        sched.barrier(&touched)?;
        self.cross_transfer(&run, request)
    }

    /// Whether [`submit_batch`](PimCluster::submit_batch) would stream this
    /// batch asynchronously (`true`) or execute it inline because it
    /// contains a chip-crossing move (`false`). Invalid batches report
    /// `true` — their submission fails fast without executing anything.
    pub fn batch_streams_async(&self, instrs: &[Instruction]) -> bool {
        if self.validate_batch(instrs).is_err() {
            return true;
        }
        instrs.iter().all(|i| match i {
            Instruction::MoveWarps { warps, dist, .. } => {
                self.plan.route_move_warps(warps, *dist).cross.is_empty()
            }
            _ => true,
        })
    }

    /// Submits a batch of non-read logical instructions *without waiting*:
    /// shard-local work is split per shard and one job per involved shard
    /// goes in flight, observable through the returned [`JobSet`] — the
    /// asynchronous counterpart of [`execute_batch`](PimCluster::execute_batch),
    /// and the primitive the `pim-serve` gateway coalesces client batches
    /// onto.
    ///
    /// A batch containing a chip-crossing move cannot stream asynchronously
    /// (host staging needs scheduler barriers), so it executes inline and
    /// the call returns [`Submission::Inline`] after it completed —
    /// semantics are identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Protocol`] for reads, plus validation and
    /// shard errors. Nothing runs if validation fails.
    pub fn submit_batch(&self, instrs: &[Instruction]) -> Result<Submission, ClusterError> {
        self.validate_batch(instrs)?;
        let mut per: Vec<Vec<Instruction>> = vec![Vec::new(); self.shards()];
        for instr in instrs {
            let cross = self.split_local(instr, |s, i| per[s].push(i));
            if cross.is_some() {
                // Discard the split and run the whole batch through the
                // barrier-aware scheduler instead.
                self.execute_batch_validated(instrs, RequestId::UNTAGGED)?;
                return Ok(Submission::Inline);
            }
        }
        let mut tickets = Vec::new();
        for (shard, instrs) in per.into_iter().enumerate() {
            if !instrs.is_empty() {
                tickets.push(self.submit(shard, instrs)?);
            }
        }
        Ok(Submission::Tickets(JobSet::new(tickets)))
    }

    /// [`submit_batch`](PimCluster::submit_batch) over request-tagged
    /// batches — the serving gateway's submission path. Per-shard work
    /// keeps batch order but carries each batch's [`RequestId`] as a
    /// worker-side segment, so execution spans and modeled cycles attribute
    /// to the request that caused them (even inside a coalesced group).
    ///
    /// If any batch needs a chip-crossing move, the batches execute inline
    /// *per batch, in order* through the barrier-aware scheduler —
    /// per-shard instruction order (and therefore every result) is
    /// identical to the untagged concatenated path, and each batch's
    /// transfers attribute to its own request.
    ///
    /// # Errors
    ///
    /// See [`submit_batch`](PimCluster::submit_batch). Nothing runs if any
    /// batch fails validation.
    pub fn submit_batch_tagged(&self, batches: &[TaggedBatch]) -> Result<Submission, ClusterError> {
        for b in batches {
            self.validate_batch(&b.instrs)?;
        }
        let mut per: Vec<Vec<(RequestId, Vec<Instruction>)>> = vec![Vec::new(); self.shards()];
        let mut crossing = false;
        'split: for b in batches {
            for instr in &b.instrs {
                let cross = self.split_local(instr, |s, i| match per[s].last_mut() {
                    Some((r, seg)) if *r == b.request => seg.push(i),
                    _ => per[s].push((b.request, vec![i])),
                });
                if cross.is_some() {
                    crossing = true;
                    break 'split;
                }
            }
        }
        if crossing {
            // Discard the split; sessions' batches touch disjoint windows
            // (they commute), so per-batch sequential execution is
            // equivalent to the concatenation.
            for b in batches {
                self.execute_batch_validated(&b.instrs, b.request)?;
            }
            return Ok(Submission::Inline);
        }
        let mut tickets = Vec::new();
        for (shard, segments) in per.into_iter().enumerate() {
            if !segments.is_empty() {
                tickets.push(self.submit_segments(shard, segments)?);
            }
        }
        Ok(Submission::Tickets(JobSet::new(tickets)))
    }

    /// Inter-chip transfer of one coalesced run over the modeled
    /// interconnect: the crossing pairs of *every* member are concatenated
    /// and grouped into one message per `(source, destination)` shard pair
    /// — one gathered read burst and one scattered write burst each — with
    /// every burst's cycle cost accounted to [`TrafficStats`]. All gathers
    /// precede all scatters; this is safe because run members are
    /// cell-independent of each other ([`MoveCoalescer::accepts`]) and each
    /// member's own source and destination warp sets are disjoint (H-tree
    /// rule).
    /// Records one accounted burst as a trace span on the interconnect
    /// track and attributes its traffic to `request`. The burst occupies
    /// `[now, now + cycles)` on the global modeled clock and advances it —
    /// host-staged transfers serialize after the drained shards' work,
    /// matching [`ClusterStats::modeled_latency_cycles`]'s upper bound.
    fn record_burst_span(&self, request: RequestId, words: u64, cycles: u64) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let start = self.telemetry.now();
        self.telemetry.advance_clock(start + cycles);
        self.ic_track
            .record_complete("burst", start, cycles, request, Some(("words", words)));
        self.telemetry.attribute(
            request,
            RequestStats {
                cross_words: words,
                link_cycles: cycles,
                ..RequestStats::default()
            },
        );
    }

    /// Consults the fault injector for one staged burst; a scheduled drop
    /// or detected corruption aborts the transfer *before* any data moves,
    /// so nothing of a faulted message ever lands (no silent corruption).
    /// Both by-index and cycle-window schedules apply — the burst is
    /// stamped with the modeled clock so window schedules (partitions) see
    /// when it was staged.
    fn check_link(&self, src_shard: usize, dst_shard: usize) -> Result<(), ClusterError> {
        let Some(inj) = &self.fault else {
            return Ok(());
        };
        if let Some(fault) = inj.link_fault_at(self.telemetry.now()) {
            return Err(ClusterError::LinkFault {
                src_shard,
                dst_shard,
                kind: match fault {
                    LinkFault::Drop => LinkFaultKind::Dropped,
                    LinkFault::Corrupt => LinkFaultKind::Corrupted,
                },
            });
        }
        Ok(())
    }

    fn cross_transfer(&self, run: &[CrossingMove], request: RequestId) -> Result<(), ClusterError> {
        match self.interconnect.config().staging {
            Staging::Batched => {
                let all: Vec<(u32, u32)> =
                    run.iter().flat_map(|m| m.pairs().iter().copied()).collect();
                let groups = self.interconnect.group(&self.plan, &all);
                if run.len() >= 2 {
                    // Messages a per-move staging would have sent (each
                    // member's distinct shard pairs), minus the merged
                    // transfer's. A scratch set keeps this O(pairs) — no
                    // per-member grouping allocations on the hot path.
                    let mut distinct: Vec<(usize, usize)> = Vec::new();
                    let per_move: usize = run
                        .iter()
                        .map(|m| {
                            distinct.clear();
                            for &(s, d) in m.pairs() {
                                let key = (self.plan.shard_of_warp(s), self.plan.shard_of_warp(d));
                                if !distinct.contains(&key) {
                                    distinct.push(key);
                                }
                            }
                            distinct.len()
                        })
                        .sum();
                    self.interconnect
                        .record_coalesced(run.len() as u64, (per_move - groups.len()) as u64);
                }
                for g in &groups {
                    self.check_link(g.src_shard, g.dst_shard)?;
                    let words = g.pairs.len() as u64;
                    let cycles = self.interconnect.record_burst(words);
                    self.record_burst_span(request, words, cycles);
                }
                let locs: Vec<GlobalLoc> = run
                    .iter()
                    .flat_map(|m| m.pairs().iter().map(|&(s, _)| (s, m.row_src(), m.src())))
                    .collect();
                let values = self.gather(&locs)?;
                let writes: Vec<GlobalWrite> = run
                    .iter()
                    .flat_map(|m| m.pairs().iter().map(|&(_, d)| (d, m.row_dst(), m.dst())))
                    .zip(values)
                    .map(|((d, row, reg), v)| GlobalWrite::new(d, row, reg, v))
                    .collect();
                self.scatter(&writes)
            }
            Staging::PerWord => {
                // The PR-1 path: one host round trip per crossing word pair,
                // each its own single-word message (merging saves barriers
                // here, never messages).
                if run.len() >= 2 {
                    self.interconnect.record_coalesced(run.len() as u64, 0);
                }
                for m in run {
                    for &(s, d) in m.pairs() {
                        self.check_link(self.plan.shard_of_warp(s), self.plan.shard_of_warp(d))?;
                        let cycles = self.interconnect.record_burst(1);
                        self.record_burst_span(request, 1, cycles);
                        let value = self.gather(&[(s, m.row_src(), m.src())])?[0];
                        self.scatter(&[GlobalWrite::new(d, m.row_dst(), m.dst(), value)])?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Reads many global `(warp, row, register)` locations, one shard job
    /// per involved shard, all in flight concurrently. Results come back in
    /// input order.
    ///
    /// # Errors
    ///
    /// Returns addressing or shard errors.
    pub fn gather(&self, locs: &[GlobalLoc]) -> Result<Vec<u32>, ClusterError> {
        self.submit_gather(locs)?.wait()
    }

    /// Submits the per-shard read jobs of a gather *without waiting*; the
    /// returned [`GatherTicket`] reassembles values in input order when
    /// waited or awaited.
    ///
    /// # Errors
    ///
    /// Returns addressing or shard errors (on submission failure nothing is
    /// partially observable — reads have no side effects).
    pub fn submit_gather(&self, locs: &[GlobalLoc]) -> Result<GatherTicket, ClusterError> {
        let mut per: Vec<(Vec<usize>, Vec<Instruction>)> = (0..self.shards())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for (i, &(warp, row, reg)) in locs.iter().enumerate() {
            let shard = self.plan.shard_of_warp(warp);
            if shard >= self.shards() {
                return Err(ClusterError::ShardIndex {
                    shard,
                    shards: self.shards(),
                });
            }
            per[shard].0.push(i);
            per[shard].1.push(Instruction::Read {
                reg,
                warp: self.plan.local_warp(warp),
                row,
            });
        }
        let mut parts = Vec::new();
        for (shard, (indices, instrs)) in per.into_iter().enumerate() {
            if !instrs.is_empty() {
                parts.push((indices, self.submit(shard, instrs)?));
            }
        }
        Ok(GatherTicket {
            parts,
            out: vec![0u32; locs.len()],
            failed: None,
        })
    }

    /// Writes many [`GlobalWrite`] cells, one shard job per involved shard,
    /// all in flight concurrently.
    ///
    /// # Errors
    ///
    /// Returns addressing or shard errors.
    pub fn scatter(&self, writes: &[GlobalWrite]) -> Result<(), ClusterError> {
        self.submit_scatter(writes)?.wait()
    }

    /// Submits the per-shard write jobs of a scatter *without waiting*.
    ///
    /// # Errors
    ///
    /// Returns addressing or shard errors.
    pub fn submit_scatter(&self, writes: &[GlobalWrite]) -> Result<JobSet, ClusterError> {
        let mut per: Vec<Vec<Instruction>> = vec![Vec::new(); self.shards()];
        for w in writes {
            let shard = self.plan.shard_of_warp(w.warp);
            if shard >= self.shards() {
                return Err(ClusterError::ShardIndex {
                    shard,
                    shards: self.shards(),
                });
            }
            per[shard].push(Instruction::Write {
                reg: w.reg,
                value: w.value,
                target: pim_isa::ThreadRange::single(self.plan.local_warp(w.warp), w.row),
            });
        }
        let mut tickets = Vec::new();
        for (shard, instrs) in per.into_iter().enumerate() {
            if !instrs.is_empty() {
                tickets.push(self.submit(shard, instrs)?);
            }
        }
        Ok(JobSet::new(tickets))
    }

    /// Gathers float words from `locs` and folds them on the host — the
    /// cross-shard combining step of a sharded reduction.
    ///
    /// # Errors
    ///
    /// Fails for an empty location list or on gather errors.
    pub fn reduce_f32(&self, locs: &[GlobalLoc], op: Combine) -> Result<f32, ClusterError> {
        let bits = self.gather(locs)?;
        fold_f32(op, bits.into_iter().map(f32::from_bits)).ok_or_else(|| ClusterError::Protocol {
            reason: "reduction over an empty location set".into(),
        })
    }

    /// Gathers int words from `locs` and folds them on the host.
    ///
    /// # Errors
    ///
    /// See [`reduce_f32`](PimCluster::reduce_f32).
    pub fn reduce_i32(&self, locs: &[GlobalLoc], op: Combine) -> Result<i32, ClusterError> {
        let bits = self.gather(locs)?;
        fold_i32(op, bits.into_iter().map(|b| b as i32)).ok_or_else(|| ClusterError::Protocol {
            reason: "reduction over an empty location set".into(),
        })
    }

    /// Executes a batch of raw micro-operations on one shard through the
    /// backend's [`pim_arch::Backend::execute_batch`] — the multi-chip
    /// equivalent of direct micro-operation access. Subject to the same
    /// protocol: batches must not contain reads.
    ///
    /// # Errors
    ///
    /// Returns shard and protocol errors.
    pub fn execute_micro_batch(&self, shard: usize, ops: Vec<MicroOp>) -> Result<(), ClusterError> {
        let (reply, rx) = channel();
        self.send(shard, Job::Micro { ops, reply })?;
        // A dropped reply sender means the worker died with the job queued
        // or in flight — typed and transient, never a panic.
        rx.recv()
            .unwrap_or(Err(ClusterError::WorkerCrashed { shard }))
    }

    fn control<R: Send + 'static>(
        &self,
        make: impl Fn(Sender<R>) -> Job,
    ) -> Result<Vec<R>, ClusterError> {
        let mut rxs = Vec::with_capacity(self.shards());
        for shard in 0..self.shards() {
            let (reply, rx) = channel();
            self.send(shard, make(reply))?;
            rxs.push((shard, rx));
        }
        rxs.into_iter()
            .map(|(shard, rx)| rx.recv().map_err(|_| ClusterError::WorkerCrashed { shard }))
            .collect()
    }

    /// Snapshots per-shard telemetry (profiler, issued cycles, routine-cache
    /// hit/miss counters).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] if a worker died.
    pub fn stats(&self) -> Result<ClusterStats, ClusterError> {
        let mut shards = self.control(|reply| Job::Stats { reply })?;
        shards.sort_by_key(|s| s.shard);
        Ok(ClusterStats {
            shards,
            traffic: self.interconnect.traffic(),
            worker_restarts: self.worker_restarts(),
            replayed_instructions: self.replayed_instructions(),
        })
    }

    /// Resets every shard simulator's profiling counters, along with the
    /// interconnect's traffic counters and every shard driver's
    /// routine-cache hit/miss telemetry (chip cycles, link cycles, and
    /// cache hit rates bound the same measurement region; compiled
    /// routines themselves are kept).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] if a worker died.
    pub fn reset_profilers(&self) -> Result<(), ClusterError> {
        self.interconnect.reset();
        self.control(|reply| Job::ResetProfiler { reply })
            .map(|_| ())
    }

    /// Resets every shard driver's issued-cycle counters.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] if a worker died.
    pub fn reset_issued(&self) -> Result<(), ClusterError> {
        self.control(|reply| Job::ResetIssued { reply }).map(|_| ())
    }

    /// Enables/disables strict stateful-logic checking on every shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Disconnected`] if a worker died.
    pub fn set_strict(&self, strict: bool) -> Result<(), ClusterError> {
        self.control(|reply| Job::SetStrict { strict, reply })
            .map(|_| ())
    }
}

impl Drop for PimCluster {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; then reap the threads.
        for w in &mut self.workers {
            w.get_mut().unwrap_or_else(|e| e.into_inner()).tx = None;
        }
        for w in &mut self.workers {
            if let Some(h) = w.get_mut().unwrap_or_else(|e| e.into_inner()).handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Spawns one shard worker thread over `driver`, returning its job
/// channel and join handle. Used both at construction and by the
/// supervisor when it respawns a crashed worker.
fn spawn_worker(
    shard: usize,
    driver: Driver<AnyBackend>,
    telemetry: &Telemetry,
    journal: Option<Arc<Mutex<ShardJournal>>>,
    fault: Option<Arc<FaultInjector>>,
    recovery: RecoveryConfig,
) -> (Sender<Job>, JoinHandle<()>) {
    let track = telemetry.track(&format!("shard-{shard}"));
    let (tx, rx) = channel();
    let handle = std::thread::Builder::new()
        .name(format!("pim-shard-{shard}"))
        .spawn(move || run_worker(shard, driver, rx, track, journal, fault, recovery))
        .expect("spawn shard worker");
    (tx, handle)
}

/// Consults the fault injector before an executable job. An injected
/// crash makes the worker exit without executing (the job's completion
/// drop guard delivers [`ClusterError::WorkerCrashed`], exactly as a real
/// worker death would); a stall charges modeled cycles before execution.
/// Returns `true` when the worker must die.
fn injected_crash(
    fault: &Option<Arc<FaultInjector>>,
    shard: usize,
    driver: &mut Driver<AnyBackend>,
) -> bool {
    match fault.as_ref().and_then(|f| f.worker_fault(shard)) {
        Some(WorkerFault::Crash) => true,
        Some(WorkerFault::Stall { cycles }) => {
            driver.backend_mut().stall(cycles);
            false
        }
        None => false,
    }
}

#[allow(clippy::needless_pass_by_value)]
fn run_worker(
    shard: usize,
    mut driver: Driver<AnyBackend>,
    rx: Receiver<Job>,
    track: TrackHandle,
    journal: Option<Arc<Mutex<ShardJournal>>>,
    fault: Option<Arc<FaultInjector>>,
    recovery: RecoveryConfig,
) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Macro { segments, reply } => {
                // Fault hook: an injected crash drops `reply` (and every
                // queued job behind it) on the floor — behaviorally
                // identical to the worker thread panicking here. The
                // channel closes *before* the reply guard delivers the
                // error, so a client that retries the instant it sees
                // `WorkerCrashed` hits the send-failure (revive) path
                // deterministically instead of racing a half-dead queue.
                if injected_crash(&fault, shard, &mut driver) {
                    drop(rx);
                    return;
                }
                let mut out = Vec::with_capacity(segments.iter().map(|(_, i)| i.len()).sum());
                let mut failure = None;
                'segments: for (request, instrs) in &segments {
                    // The shard's own profiler cycle counter is this
                    // track's timeline; snapshot it around the segment so
                    // the span (and its attribution) covers exactly the
                    // cycles this request's instructions consumed. Gated
                    // on one relaxed load when telemetry is disabled.
                    let recording = track.is_enabled();
                    let before = if recording {
                        driver.backend().profiler().cycles
                    } else {
                        0
                    };
                    for instr in instrs {
                        match driver.execute(instr) {
                            Ok(v) => out.push(v),
                            Err(e) => {
                                failure = Some(ClusterError::Shard { shard, source: e });
                                break 'segments;
                            }
                        }
                    }
                    if recording {
                        let after = driver.backend().profiler().cycles;
                        let delta = after.saturating_sub(before);
                        let telemetry = track.telemetry();
                        // Anchor at the later of the global clock and this
                        // shard's profiler total (see the single-chip
                        // `submit_tagged` path): equivalent to the old
                        // absolute-profiler charging until a driver jumps
                        // the clock ahead, after which execution still
                        // occupies real modeled time.
                        let start = telemetry.now().max(before);
                        track.record_complete(
                            "exec",
                            start,
                            delta,
                            *request,
                            Some(("instructions", instrs.len() as u64)),
                        );
                        telemetry.advance_clock(start + delta);
                        telemetry.attribute(
                            *request,
                            RequestStats {
                                cycles: after.saturating_sub(before),
                                instructions: instrs.len() as u64,
                                ..RequestStats::default()
                            },
                        );
                    }
                }
                // Journal before replying: once the caller sees success,
                // the state that produced it must be recoverable.
                if let Some(journal) = &journal {
                    let mut j = journal.lock().unwrap_or_else(|e| e.into_inner());
                    if failure.is_none() {
                        for (_, instrs) in segments {
                            if !instrs.is_empty() {
                                j.logged_instrs += instrs.len();
                                j.log.push(JournalEntry::Instrs(instrs));
                            }
                        }
                        j.maybe_checkpoint(&driver, &recovery);
                    } else {
                        // The job died partway; a fresh snapshot absorbs
                        // whatever state exists instead of trying to
                        // journal a partial effect.
                        j.checkpoint(&driver);
                    }
                }
                reply.complete(match failure {
                    None => Ok(out),
                    Some(e) => Err(e),
                });
            }
            Job::Micro { ops, reply } => {
                if injected_crash(&fault, shard, &mut driver) {
                    drop(rx);
                    return;
                }
                let result =
                    driver
                        .backend_mut()
                        .execute_batch(&ops)
                        .map_err(|e| ClusterError::Shard {
                            shard,
                            source: DriverError::from(e),
                        });
                // Raw micro-operations may have changed the stored masks
                // behind the driver's mask-elision cache.
                driver.invalidate_masks();
                if let Some(journal) = &journal {
                    // A failed micro batch rolled back completely
                    // (`execute_batch` is transactional), so only
                    // successes are journaled.
                    if result.is_ok() {
                        let mut j = journal.lock().unwrap_or_else(|e| e.into_inner());
                        j.logged_instrs += ops.len();
                        j.log.push(JournalEntry::Micro(ops));
                        j.maybe_checkpoint(&driver, &recovery);
                    }
                }
                let _ = reply.send(result);
            }
            Job::Stats { reply } => {
                let (cache_hits, cache_misses) = driver.cache_stats();
                let _ = reply.send(ShardStats {
                    shard,
                    profiler: driver.backend().profiler().clone(),
                    issued: driver.issued(),
                    cache_hits,
                    cache_misses,
                    sim_threads: driver.backend().threads(),
                });
            }
            Job::ResetProfiler { reply } => {
                driver.backend_mut().reset_profiler();
                // Hit/miss telemetry belongs to the same measurement
                // region as the chip cycle counters; serving benchmarks
                // must start from a clean slate.
                driver.reset_cache_stats();
                if let Some(journal) = &journal {
                    let mut j = journal.lock().unwrap_or_else(|e| e.into_inner());
                    j.log.push(JournalEntry::ResetProfiler);
                }
                let _ = reply.send(());
            }
            Job::ResetIssued { reply } => {
                driver.reset_issued();
                if let Some(journal) = &journal {
                    let mut j = journal.lock().unwrap_or_else(|e| e.into_inner());
                    j.log.push(JournalEntry::ResetIssued);
                }
                let _ = reply.send(());
            }
            Job::SetStrict { strict, reply } => {
                driver.backend_mut().set_strict(strict);
                if let Some(journal) = &journal {
                    let mut j = journal.lock().unwrap_or_else(|e| e.into_inner());
                    j.log.push(JournalEntry::SetStrict(strict));
                }
                let _ = reply.send(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::RangeMask;
    use pim_isa::{DType, Instruction, RegOp, ThreadRange};

    /// 4 chips x 4 crossbars x 64 rows.
    fn cluster4() -> PimCluster {
        PimCluster::new(PimConfig::small().with_crossbars(4), 4).unwrap()
    }

    #[test]
    fn flat_address_space_write_read() {
        let c = cluster4();
        assert_eq!(c.shards(), 4);
        assert_eq!(c.logical_config().crossbars, 16);
        // One location per shard.
        for (warp, value) in [(0u32, 10u32), (5, 20), (10, 30), (15, 40)] {
            c.execute(&Instruction::Write {
                reg: 1,
                value,
                target: ThreadRange::single(warp, 3),
            })
            .unwrap();
        }
        for (warp, value) in [(0u32, 10u32), (5, 20), (10, 30), (15, 40)] {
            let got = c
                .execute(&Instruction::Read {
                    reg: 1,
                    warp,
                    row: 3,
                })
                .unwrap();
            assert_eq!(got, Some(value), "warp {warp}");
        }
    }

    #[test]
    fn rtype_spans_all_shards() {
        let c = cluster4();
        let all = ThreadRange::all(c.logical_config());
        c.execute_batch(&[
            Instruction::Write {
                reg: 0,
                value: 30,
                target: all,
            },
            Instruction::Write {
                reg: 1,
                value: 12,
                target: all,
            },
            Instruction::RType {
                op: RegOp::Add,
                dtype: DType::Int32,
                dst: 2,
                srcs: [0, 1, 0],
                target: all,
            },
        ])
        .unwrap();
        for warp in [0u32, 3, 4, 9, 15] {
            let got = c
                .execute(&Instruction::Read {
                    reg: 2,
                    warp,
                    row: 63,
                })
                .unwrap();
            assert_eq!(got, Some(42), "warp {warp}");
        }
    }

    #[test]
    fn cross_shard_move_matches_gather_scatter() {
        let c = cluster4();
        // Seed distinct values in register 0, row 2 of every warp.
        let writes: Vec<GlobalWrite> = (0..16)
            .map(|w| GlobalWrite::new(w, 2, 0, 1000 + w))
            .collect();
        c.scatter(&writes).unwrap();
        // Upper half -> lower half: every pair crosses a shard boundary.
        c.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 2,
            row_dst: 2,
            warps: RangeMask::new(8, 15, 1).unwrap(),
            dist: -8,
        })
        .unwrap();
        let locs: Vec<GlobalLoc> = (0..8).map(|w| (w, 2, 1)).collect();
        assert_eq!(
            c.gather(&locs).unwrap(),
            (0..8).map(|w| 1008 + w).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn intra_shard_move_stays_native() {
        let c = cluster4();
        c.scatter(&[GlobalWrite::new(4, 0, 0, 7777)]).unwrap();
        // Warp 4 -> warp 5: both on shard 1, no host transfer.
        c.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 0,
            row_src: 0,
            row_dst: 1,
            warps: RangeMask::single(4),
            dist: 1,
        })
        .unwrap();
        assert_eq!(c.gather(&[(5, 1, 0)]).unwrap(), vec![7777]);
        // A native move executes zero reads on any chip.
        let stats = c.stats().unwrap();
        assert_eq!(
            stats
                .shards
                .iter()
                .map(|s| s.profiler.ops.read)
                .sum::<u64>(),
            1, // only the gather's read
        );
    }

    #[test]
    fn partially_crossing_move_splits_at_boundary() {
        let c = cluster4();
        // Warps {1, 2} shift by +2: warp 1 -> 3 stays on shard 0 (native
        // move), warp 2 -> 4 crosses into shard 1 (host staging).
        c.scatter(&[
            GlobalWrite::new(1, 0, 0, 111),
            GlobalWrite::new(2, 0, 0, 222),
        ])
        .unwrap();
        c.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 0,
            row_dst: 0,
            warps: RangeMask::new(1, 2, 1).unwrap(),
            dist: 2,
        })
        .unwrap();
        // Only the crossing pair was staged through the host: one chip
        // read (the gather of warp 2), not two.
        let stats = c.stats().unwrap();
        assert_eq!(
            stats
                .shards
                .iter()
                .map(|s| s.profiler.ops.read)
                .sum::<u64>(),
            1,
            "in-shard prefix must stay a native move"
        );
        // And exactly one native move ran (on shard 0).
        assert_eq!(
            stats.shards.iter().map(|s| s.profiler.ops.mv).sum::<u64>(),
            1
        );
        assert_eq!(c.gather(&[(3, 0, 1), (4, 0, 1)]).unwrap(), vec![111, 222]);
    }

    #[test]
    fn submit_streams_concurrently() {
        let c = cluster4();
        // One pending batch per shard before any wait.
        let tickets: Vec<JobTicket> = (0..4)
            .map(|s| {
                c.submit(
                    s,
                    vec![Instruction::Write {
                        reg: 0,
                        value: s as u32,
                        target: ThreadRange::single(0, 0),
                    }],
                )
                .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let vals = c
            .gather(&[(0, 0, 0), (4, 0, 0), (8, 0, 0), (12, 0, 0)])
            .unwrap();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn micro_batch_rejects_reads_on_shard_path() {
        // The Backend::execute_batch protocol holds through the cluster.
        let c = cluster4();
        let err = c
            .execute_micro_batch(2, vec![MicroOp::Read { index: 0 }])
            .unwrap_err();
        assert!(
            matches!(&err, ClusterError::Shard { shard: 2, .. }),
            "unexpected error {err:?}"
        );
        // Non-read micro batches execute.
        c.execute_micro_batch(2, vec![MicroOp::Write { index: 0, value: 5 }])
            .unwrap();
    }

    #[test]
    fn batch_rejects_macro_reads() {
        let c = cluster4();
        let err = c
            .execute_batch(&[Instruction::Read {
                reg: 0,
                warp: 0,
                row: 0,
            }])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol { .. }));
    }

    #[test]
    fn micro_batch_does_not_poison_mask_elision() {
        // Raw micro-operations change the stored masks behind the shard
        // driver's back; the worker must invalidate the driver's
        // mask-elision cache or later macro-instructions execute under
        // stale masks.
        let c = cluster4();
        let all = ThreadRange::all(c.logical_config());
        c.execute(&Instruction::Write {
            reg: 0,
            value: 1,
            target: all,
        })
        .unwrap();
        c.execute_micro_batch(
            0,
            vec![
                MicroOp::XbMask(RangeMask::single(0)),
                MicroOp::RowMask(RangeMask::single(0)),
            ],
        )
        .unwrap();
        c.execute(&Instruction::Write {
            reg: 0,
            value: 2,
            target: all,
        })
        .unwrap();
        // Without invalidation this read returns the stale value 1.
        assert_eq!(
            c.execute(&Instruction::Read {
                reg: 0,
                warp: 3,
                row: 5
            })
            .unwrap(),
            Some(2)
        );
    }

    #[test]
    fn batch_errors_are_all_or_nothing() {
        let c = cluster4();
        let err = c
            .execute_batch(&[
                Instruction::Write {
                    reg: 0,
                    value: 7,
                    target: ThreadRange::single(0, 0),
                },
                Instruction::Read {
                    reg: 0,
                    warp: 0,
                    row: 0,
                },
            ])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol { .. }));
        // The write preceding the rejected read must not have run.
        assert_eq!(c.gather(&[(0, 0, 0)]).unwrap(), vec![0]);
    }

    #[test]
    fn stats_aggregate_cache_and_cycles() {
        let c = cluster4();
        let all = ThreadRange::all(c.logical_config());
        let add = Instruction::RType {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst: 2,
            srcs: [0, 1, 0],
            target: all,
        };
        c.execute(&add).unwrap();
        c.execute(&add).unwrap();
        let stats = c.stats().unwrap();
        // The compilation map is shared: exactly one shard compiled the
        // routine; the other seven lookups across both executions hit.
        assert_eq!(stats.cache_stats(), (7, 1));
        assert!(stats.total_cycles() > 0);
        assert!(stats.critical_path_cycles() <= stats.total_cycles());
        assert_eq!(stats.merged_profiler().cycles, stats.critical_path_cycles());
        assert_eq!(
            stats.issued().total,
            stats.shards.iter().map(|s| s.issued.total).sum()
        );
        for s in &stats.shards {
            assert_eq!(s.sim_threads, 1, "shard sims must be pinned to 1 thread");
        }
    }

    #[test]
    fn reset_profilers_clears_cache_telemetry() {
        let c = cluster4();
        let all = ThreadRange::all(c.logical_config());
        let add = Instruction::RType {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst: 2,
            srcs: [0, 1, 0],
            target: all,
        };
        c.execute(&add).unwrap();
        assert_ne!(c.stats().unwrap().cache_stats(), (0, 0));
        c.reset_profilers().unwrap();
        assert_eq!(
            c.stats().unwrap().cache_stats(),
            (0, 0),
            "hit/miss telemetry must reset with the profilers"
        );
        // The compiled-routine map survives: re-running the same routine
        // hits on every shard, zero misses.
        c.execute(&add).unwrap();
        assert_eq!(c.stats().unwrap().cache_stats(), (c.shards() as u64, 0));
    }

    #[test]
    fn routine_compiles_once_per_cluster() {
        // The shard drivers share one compilation map: for every distinct
        // routine key the cluster records exactly one miss (the compiling
        // shard), and every other shard that runs the routine hits.
        let c = cluster4();
        let all = ThreadRange::all(c.logical_config());
        let ops = [
            (RegOp::Add, 2u8),
            (RegOp::Sub, 3),
            (RegOp::And, 4),
            (RegOp::Or, 5),
        ];
        for (op, dst) in ops {
            c.execute(&Instruction::RType {
                op,
                dtype: DType::Int32,
                dst,
                srcs: [0, 1, 0],
                target: all,
            })
            .unwrap();
        }
        let stats = c.stats().unwrap();
        let (hits, misses) = stats.cache_stats();
        assert_eq!(
            misses,
            ops.len() as u64,
            "one compile per routine key cluster-wide"
        );
        assert_eq!(hits, (c.shards() as u64 - 1) * ops.len() as u64);
        // Per-shard telemetry survives sharing: every shard ran every
        // routine, so its own hit+miss count is the number of routines.
        for s in &stats.shards {
            assert_eq!(
                s.cache_hits + s.cache_misses,
                ops.len() as u64,
                "shard {}",
                s.shard
            );
        }
    }

    #[test]
    fn reduce_combines_across_shards() {
        let c = cluster4();
        let writes: Vec<GlobalWrite> = (0..16u32)
            .map(|w| GlobalWrite::new(w, 0, 0, (w as f32 + 1.0).to_bits()))
            .collect();
        c.scatter(&writes).unwrap();
        let locs: Vec<GlobalLoc> = (0..16u32).map(|w| (w, 0, 0)).collect();
        assert_eq!(c.reduce_f32(&locs, Combine::Sum).unwrap(), 136.0);
        assert_eq!(c.reduce_f32(&locs, Combine::Min).unwrap(), 1.0);
        assert_eq!(c.reduce_f32(&locs, Combine::Max).unwrap(), 16.0);
        let iwrites: Vec<GlobalWrite> = (0..16u32)
            .map(|w| GlobalWrite::new(w, 1, 1, w.wrapping_sub(8)))
            .collect();
        c.scatter(&iwrites).unwrap();
        let ilocs: Vec<GlobalLoc> = (0..16u32).map(|w| (w, 1, 1)).collect();
        assert_eq!(c.reduce_i32(&ilocs, Combine::Min).unwrap(), -8);
        assert_eq!(c.reduce_i32(&ilocs, Combine::Max).unwrap(), 7);
        assert_eq!(c.reduce_i32(&ilocs, Combine::Sum).unwrap(), -8);
    }

    #[test]
    fn invalid_logical_instruction_rejected() {
        let c = cluster4();
        // Warp 16 is out of the 16-warp logical space.
        let err = c
            .execute(&Instruction::Read {
                reg: 0,
                warp: 16,
                row: 0,
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Invalid(_)));
        let err = c.submit(9, vec![]).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::ShardIndex {
                shard: 9,
                shards: 4
            }
        ));
    }

    #[test]
    fn single_shard_cluster_behaves_like_one_chip() {
        let c = PimCluster::new(PimConfig::small(), 1).unwrap();
        assert_eq!(c.logical_config(), c.shard_config());
        let all = ThreadRange::all(c.logical_config());
        c.execute(&Instruction::Write {
            reg: 3,
            value: 9,
            target: all,
        })
        .unwrap();
        assert_eq!(
            c.execute(&Instruction::Read {
                reg: 3,
                warp: 15,
                row: 63
            })
            .unwrap(),
            Some(9)
        );
    }

    #[test]
    fn cluster_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PimCluster>();
        assert_send_sync::<JobTicket>();
        assert_send_sync::<JobSet>();
        assert_send_sync::<GatherTicket>();
    }

    /// Polls a future once with a flag-setting waker, returning the result
    /// if ready plus whether the waker has fired so far.
    fn poll_once<F: Future + Unpin>(
        fut: &mut F,
        fired: &Arc<std::sync::atomic::AtomicBool>,
    ) -> Option<F::Output> {
        struct Flag(Arc<std::sync::atomic::AtomicBool>);
        impl std::task::Wake for Flag {
            fn wake(self: Arc<Self>) {
                self.0.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let waker = std::task::Waker::from(Arc::new(Flag(Arc::clone(fired))));
        let mut cx = Context::from_waker(&waker);
        match Pin::new(fut).poll(&mut cx) {
            Poll::Ready(out) => Some(out),
            Poll::Pending => None,
        }
    }

    #[test]
    fn ticket_future_wakes_on_completion() {
        let c = cluster4();
        let fired = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut ticket = c
            .submit(
                1,
                vec![Instruction::Write {
                    reg: 0,
                    value: 77,
                    target: ThreadRange::single(0, 0),
                }],
            )
            .unwrap();
        // Poll until ready; completion must fire the registered waker
        // rather than being silently dropped (no spinning needed in real
        // executors — this loop only tolerates the race where the job
        // finishes before the first poll registers a waker).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let result = loop {
            if let Some(r) = poll_once(&mut ticket, &fired) {
                break r;
            }
            while !fired.load(std::sync::atomic::Ordering::SeqCst) {
                assert!(std::time::Instant::now() < deadline, "waker never fired");
                std::thread::yield_now();
            }
            fired.store(false, std::sync::atomic::Ordering::SeqCst);
        };
        assert_eq!(result.unwrap(), vec![None]);
        assert_eq!(c.gather(&[(4, 0, 0)]).unwrap(), vec![77]);
    }

    #[test]
    fn submit_batch_streams_local_instructions() {
        let c = cluster4();
        let all = ThreadRange::all(c.logical_config());
        let sub = c
            .submit_batch(&[
                Instruction::Write {
                    reg: 0,
                    value: 30,
                    target: all,
                },
                Instruction::Write {
                    reg: 1,
                    value: 12,
                    target: all,
                },
                Instruction::RType {
                    op: RegOp::Add,
                    dtype: DType::Int32,
                    dst: 2,
                    srcs: [0, 1, 0],
                    target: all,
                },
            ])
            .unwrap();
        assert!(matches!(sub, Submission::Tickets(_)), "all shard-local");
        sub.wait().unwrap();
        assert_eq!(c.gather(&[(0, 0, 2), (15, 63, 2)]).unwrap(), vec![42, 42]);
    }

    #[test]
    fn submit_batch_crossing_move_executes_inline() {
        let c = cluster4();
        c.scatter(&[GlobalWrite::new(8, 2, 0, 555)]).unwrap();
        let sub = c
            .submit_batch(&[Instruction::MoveWarps {
                src: 0,
                dst: 1,
                row_src: 2,
                row_dst: 2,
                warps: RangeMask::single(8),
                dist: -8,
            }])
            .unwrap();
        // Crossing moves need host staging: the submission completed
        // before returning.
        assert!(matches!(sub, Submission::Inline));
        assert_eq!(c.gather(&[(0, 2, 1)]).unwrap(), vec![555]);
    }

    #[test]
    fn submit_gather_and_scatter_roundtrip_async() {
        let c = cluster4();
        let writes: Vec<GlobalWrite> = (0..16)
            .map(|w| GlobalWrite::new(w, 1, 3, 900 + w))
            .collect();
        c.submit_scatter(&writes).unwrap().wait().unwrap();
        let locs: Vec<GlobalLoc> = (0..16).map(|w| (w, 1, 3)).collect();
        // Drive the gather ticket as a future to completion.
        let fired = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut ticket = c.submit_gather(&locs).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let values = loop {
            if let Some(r) = poll_once(&mut ticket, &fired) {
                break r.unwrap();
            }
            assert!(
                std::time::Instant::now() < deadline,
                "gather never completed"
            );
            std::thread::yield_now();
        };
        assert_eq!(values, (900..916).collect::<Vec<u32>>());
    }

    /// Builds a 4-chip cluster with explicit interconnect policies.
    fn cluster4_with(staging: Staging, drain: DrainPolicy) -> PimCluster {
        PimCluster::with_interconnect(
            PimConfig::small().with_crossbars(4),
            4,
            ParallelismMode::default(),
            InterconnectConfig {
                staging,
                drain,
                ..InterconnectConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn invalid_interconnect_rejected() {
        let err = PimCluster::with_interconnect(
            PimConfig::small().with_crossbars(4),
            4,
            ParallelismMode::default(),
            InterconnectConfig {
                link_bits: 0,
                ..InterconnectConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidInterconnect { .. }));
    }

    #[test]
    fn cross_move_records_traffic() {
        let c = cluster4();
        // Warps 8..=15 -> 0..=7: 8 crossing pairs over two (src, dst) shard
        // pairs, (2,0) and (3,1).
        c.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 0,
            row_dst: 0,
            warps: RangeMask::new(8, 15, 1).unwrap(),
            dist: -8,
        })
        .unwrap();
        let t = c.stats().unwrap().traffic;
        assert_eq!(t.messages, 2, "one burst per (src, dst) shard pair");
        assert_eq!(t.cross_words, 8);
        // Default link: 128 bits wide, latency 8 -> 8 + ceil(4*32/128) = 9
        // cycles per 4-word burst.
        assert_eq!(t.link_cycles, 2 * (8 + 1));
        assert_eq!(t.barriers, 1);
        // Nothing was queued ahead of the move, so no queues drained.
        assert_eq!(t.drained_queues, 0);
        // Counters reset with the profilers (one measurement region).
        c.reset_profilers().unwrap();
        assert_eq!(c.stats().unwrap().traffic, TrafficStats::default());
    }

    #[test]
    fn intra_shard_move_records_no_traffic() {
        let c = cluster4();
        c.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 0,
            row_src: 0,
            row_dst: 1,
            warps: RangeMask::single(4),
            dist: 1,
        })
        .unwrap();
        assert_eq!(c.stats().unwrap().traffic, TrafficStats::default());
    }

    #[test]
    fn barrier_drains_only_touched_shards() {
        let c = cluster4();
        // Queue work on every shard, then cross between shards 0 and 1
        // only: exactly two queues drain. Under the global policy all four
        // (busy) queues drain.
        let all = ThreadRange::all(c.logical_config());
        let batch = [
            Instruction::Write {
                reg: 0,
                value: 3,
                target: all,
            },
            Instruction::MoveWarps {
                src: 0,
                dst: 1,
                row_src: 0,
                row_dst: 0,
                warps: RangeMask::new(2, 3, 1).unwrap(),
                dist: 2,
            },
        ];
        c.execute_batch(&batch).unwrap();
        let t = c.stats().unwrap().traffic;
        assert_eq!(t.barriers, 1);
        assert_eq!(t.drained_queues, 2, "only shards 0 and 1 are touched");

        let g = cluster4_with(Staging::Batched, DrainPolicy::Global);
        g.execute_batch(&batch).unwrap();
        let t = g.stats().unwrap().traffic;
        assert_eq!(t.barriers, 1);
        assert_eq!(t.drained_queues, 4, "global policy drains every shard");
    }

    #[test]
    fn staging_and_drain_policies_are_equivalent() {
        // The same cross-heavy batch must leave identical memory under
        // every staging x drain combination; only the traffic model
        // differs.
        let batch = |c: &PimCluster| {
            let all = ThreadRange::all(c.logical_config());
            let writes: Vec<GlobalWrite> = (0..16)
                .map(|w| GlobalWrite::new(w, 0, 0, 100 + w))
                .collect();
            c.scatter(&writes).unwrap();
            c.execute_batch(&[
                Instruction::Write {
                    reg: 1,
                    value: 5,
                    target: all,
                },
                // Shift the lower half up by 8 (every pair crosses chips).
                Instruction::MoveWarps {
                    src: 0,
                    dst: 2,
                    row_src: 0,
                    row_dst: 0,
                    warps: RangeMask::new(0, 7, 1).unwrap(),
                    dist: 8,
                },
                Instruction::RType {
                    op: RegOp::Add,
                    dtype: DType::Int32,
                    dst: 3,
                    srcs: [1, 2, 0],
                    target: ThreadRange::new(
                        RangeMask::new(8, 15, 1).unwrap(),
                        RangeMask::single(0),
                    ),
                },
            ])
            .unwrap();
            let locs: Vec<GlobalLoc> = (8..16).map(|w| (w, 0, 3)).collect();
            c.gather(&locs).unwrap()
        };
        let reference = batch(&cluster4());
        assert_eq!(reference, (0..8).map(|w| 105 + w).collect::<Vec<u32>>());
        for staging in [Staging::Batched, Staging::PerWord] {
            for drain in [DrainPolicy::Touched, DrainPolicy::Global] {
                let c = cluster4_with(staging, drain);
                assert_eq!(
                    batch(&c),
                    reference,
                    "{staging:?}/{drain:?} diverged from the default policy"
                );
            }
        }
    }

    #[test]
    fn per_word_staging_counts_one_message_per_pair() {
        let c = cluster4_with(Staging::PerWord, DrainPolicy::Touched);
        c.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 0,
            row_dst: 0,
            warps: RangeMask::new(8, 15, 1).unwrap(),
            dist: -8,
        })
        .unwrap();
        let t = c.stats().unwrap().traffic;
        assert_eq!(t.messages, 8, "per-word staging sends one message per pair");
        assert_eq!(t.cross_words, 8);
        // Each single-word message pays the full latency: 8 x (8 + 1).
        assert_eq!(t.link_cycles, 8 * (8 + 1));
    }

    /// Builds a 4-chip cluster with an explicit coalescing policy.
    fn cluster4_coalesce(coalesce: crate::Coalesce) -> PimCluster {
        PimCluster::with_interconnect(
            PimConfig::small().with_crossbars(4),
            4,
            ParallelismMode::default(),
            InterconnectConfig {
                coalesce,
                ..InterconnectConfig::default()
            },
        )
        .unwrap()
    }

    /// The shifted() decomposition shape: one crossing `MoveWarps` per row
    /// class, all with the same distance.
    fn per_row_shift_batch(rows: u32) -> Vec<Instruction> {
        (0..rows)
            .map(|row| Instruction::MoveWarps {
                src: 0,
                dst: 1,
                row_src: row,
                row_dst: row,
                warps: RangeMask::new(8, 15, 1).unwrap(),
                dist: -8,
            })
            .collect()
    }

    #[test]
    fn coalescer_merges_consecutive_crossing_moves() {
        // Four same-distance crossing moves on distinct rows: one merged
        // run — a single barrier and one burst per (src, dst) shard pair
        // for the whole run — instead of four of each.
        let batch = per_row_shift_batch(4);
        let c = cluster4_coalesce(crate::Coalesce::On);
        c.execute_batch(&batch).unwrap();
        let t = c.stats().unwrap().traffic;
        assert_eq!(t.barriers, 1, "one barrier for the whole run");
        assert_eq!(t.messages, 2, "shard pairs (2,0) and (3,1), once each");
        assert_eq!(t.cross_words, 32);
        assert_eq!(t.runs_merged, 1);
        assert_eq!(t.moves_merged, 4);
        // Per-move staging would have sent 4 moves x 2 shard pairs.
        assert_eq!(t.bursts_saved, 4 * 2 - 2);

        let off = cluster4_coalesce(crate::Coalesce::Off);
        off.execute_batch(&batch).unwrap();
        let t = off.stats().unwrap().traffic;
        assert_eq!(t.barriers, 4, "per-move path pays one barrier per move");
        assert_eq!(t.messages, 4 * 2);
        assert_eq!(t.cross_words, 32);
        assert_eq!(t.runs_merged, 0);
        assert_eq!(t.moves_merged, 0);
        assert_eq!(t.bursts_saved, 0);
    }

    #[test]
    fn coalescing_policies_leave_identical_memory() {
        let run = |c: &PimCluster| {
            let writes: Vec<GlobalWrite> = (8..16u32)
                .flat_map(|w| (0..4u32).map(move |r| GlobalWrite::new(w, r, 0, w * 100 + r)))
                .collect();
            c.scatter(&writes).unwrap();
            c.execute_batch(&per_row_shift_batch(4)).unwrap();
            let locs: Vec<GlobalLoc> = (0..8u32)
                .flat_map(|w| (0..4u32).map(move |r| (w, r, 1)))
                .collect();
            c.gather(&locs).unwrap()
        };
        let on = run(&cluster4_coalesce(crate::Coalesce::On));
        let off = run(&cluster4_coalesce(crate::Coalesce::Off));
        assert_eq!(on, off, "coalescing must not change memory contents");
        assert_eq!(on[0], 800, "warp 8 row 0 landed on warp 0");
    }

    #[test]
    fn interleaved_non_moves_flush_the_run() {
        // work / move / work / move: the interleaved element work breaks
        // every run, so coalescing changes nothing relative to per-move
        // execution (the move_mixed bench shape must not regress).
        let all = ThreadRange::all(cluster4_coalesce(crate::Coalesce::On).logical_config());
        let batch: Vec<Instruction> = (0..2)
            .flat_map(|_| {
                [
                    Instruction::Write {
                        reg: 0,
                        value: 3,
                        target: all,
                    },
                    Instruction::MoveWarps {
                        src: 0,
                        dst: 1,
                        row_src: 0,
                        row_dst: 0,
                        warps: RangeMask::new(8, 15, 1).unwrap(),
                        dist: -8,
                    },
                ]
            })
            .collect();
        let c = cluster4_coalesce(crate::Coalesce::On);
        c.execute_batch(&batch).unwrap();
        let t = c.stats().unwrap().traffic;
        assert_eq!(t.barriers, 2, "each move still pays its own barrier");
        assert_eq!(t.runs_merged, 0, "runs of one are not merged");
        assert_eq!(t.moves_merged, 0);
    }

    #[test]
    fn global_write_loc_parity() {
        let w = GlobalWrite::new(9, 5, 2, 42);
        assert_eq!(w.loc(), (9, 5, 2));
        let c = cluster4();
        c.scatter(&[w]).unwrap();
        assert_eq!(c.gather(&[w.loc()]).unwrap(), vec![42]);
    }

    #[test]
    fn modeled_latency_includes_link_cycles() {
        let c = cluster4();
        c.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 0,
            row_dst: 0,
            warps: RangeMask::new(8, 15, 1).unwrap(),
            dist: -8,
        })
        .unwrap();
        let stats = c.stats().unwrap();
        assert_eq!(
            stats.modeled_latency_cycles(),
            stats.critical_path_cycles() + stats.traffic.link_cycles
        );
        assert!(stats.traffic.link_cycles > 0);
    }
}
