//! # pim-isa
//!
//! The general-purpose PIM instruction-set architecture of PyPIM (§IV).
//!
//! The ISA abstracts a digital memristive PIM memory as **warps of
//! threads**: each crossbar array is a warp, each row is a thread, and each
//! thread owns `R` word registers — which *are* the memory itself (the
//! registers of the threads are the stored data, so arithmetic happens in
//! place rather than after a copy to a compute unit).
//!
//! Macro-instructions come in four kinds:
//!
//! * **R-type** ([`Instruction::RType`]): a register operation from
//!   Table II (arithmetic / comparison / bitwise / miscellaneous, on `int32`
//!   or `float32`) applied in parallel across all threads selected by a
//!   warp range and a row range (both follow the flexible `start:stop:step`
//!   pattern of §III).
//! * **Intra-warp moves** ([`Instruction::MoveRows`]): warp-parallel,
//!   thread-serial transfers of a register between threads of the same warp.
//! * **Inter-warp moves** ([`Instruction::MoveWarps`]): distributed
//!   transfers between warp pairs following the H-tree pattern of §III-F.
//! * **Read/Write** ([`Instruction::Read`], [`Instruction::Write`]): scalar
//!   access; writes may broadcast across a thread range (typically used for
//!   constants).
//!
//! The host driver (`pim-driver`) lowers these macro-instructions to
//! micro-operations.

mod instruction;
mod ops;

pub use instruction::{Instruction, ThreadRange};
pub use ops::{DType, RegOp};
