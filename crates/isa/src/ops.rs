use std::fmt;

/// Element datatypes supported by the ISA (Table II): 32-bit two's-complement
/// integers and IEEE-754 single-precision floats. The word size matches the
/// architectural `N = 32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit signed integer (wrapping arithmetic).
    Int32,
    /// IEEE-754 binary32 with round-to-nearest-even.
    Float32,
}

impl DType {
    /// All supported datatypes.
    pub const ALL: [DType; 2] = [DType::Int32, DType::Float32];
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DType::Int32 => "int32",
            DType::Float32 => "float32",
        })
    }
}

/// The R-type register operations of Table II.
///
/// Comparison operations produce an `int32` register holding 0 or 1
/// regardless of the operand datatype (float comparisons follow IEEE-754:
/// `NaN` is unordered and `-0 == +0`).
///
/// Defined semantics beyond the paper's table (documented substitutions):
///
/// * Integer division/modulo truncate toward zero; division by zero yields
///   quotient 0 and remainder = dividend; `i32::MIN / -1` wraps.
/// * [`Sign`](RegOp::Sign) returns −1/0/+1 (or −1.0/0.0/+1.0); the sign of
///   `NaN` is `NaN`.
/// * [`Zero`](RegOp::Zero) returns 1 (or 1.0) when the operand equals zero
///   (both float zeros count).
/// * [`Mux`](RegOp::Mux) selects the second operand where the first
///   (condition) register is nonzero, else the third.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// `dst = a + b`.
    Add,
    /// `dst = a - b`.
    Sub,
    /// `dst = a * b` (integer result truncated to 32 bits, as in the
    /// paper's §V-C footnote).
    Mul,
    /// `dst = a / b`.
    Div,
    /// `dst = a % b` (integer only).
    Mod,
    /// `dst = -a`.
    Neg,
    /// `dst = (a < b) as int32`.
    Lt,
    /// `dst = (a <= b) as int32`.
    Le,
    /// `dst = (a > b) as int32`.
    Gt,
    /// `dst = (a >= b) as int32`.
    Ge,
    /// `dst = (a == b) as int32`.
    Eq,
    /// `dst = (a != b) as int32`.
    Ne,
    /// `dst = !a` (bitwise complement of the raw word).
    Not,
    /// `dst = a & b` (raw words).
    And,
    /// `dst = a | b` (raw words).
    Or,
    /// `dst = a ^ b` (raw words).
    Xor,
    /// `dst = sign(a)`.
    Sign,
    /// `dst = (a == 0) as the operand dtype`.
    Zero,
    /// `dst = |a|`.
    Abs,
    /// `dst = cond ? a : b` (three-operand multiplexer).
    Mux,
}

impl RegOp {
    /// Every R-type operation, in Table II order.
    pub const ALL: [RegOp; 20] = [
        RegOp::Add,
        RegOp::Sub,
        RegOp::Mul,
        RegOp::Div,
        RegOp::Mod,
        RegOp::Neg,
        RegOp::Lt,
        RegOp::Le,
        RegOp::Gt,
        RegOp::Ge,
        RegOp::Eq,
        RegOp::Ne,
        RegOp::Not,
        RegOp::And,
        RegOp::Or,
        RegOp::Xor,
        RegOp::Sign,
        RegOp::Zero,
        RegOp::Abs,
        RegOp::Mux,
    ];

    /// Number of source registers this operation reads.
    pub fn arity(self) -> usize {
        match self {
            RegOp::Neg | RegOp::Not | RegOp::Sign | RegOp::Zero | RegOp::Abs => 1,
            RegOp::Mux => 3,
            _ => 2,
        }
    }

    /// Whether Table II marks this operation as supported for `dtype`.
    /// Only [`Mod`](RegOp::Mod) is integer-only.
    pub fn supports(self, dtype: DType) -> bool {
        match self {
            RegOp::Mod => dtype == DType::Int32,
            _ => true,
        }
    }

    /// Whether this is a comparison producing an `int32` 0/1 result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            RegOp::Lt | RegOp::Le | RegOp::Gt | RegOp::Ge | RegOp::Eq | RegOp::Ne
        )
    }

    /// The Table II category this operation belongs to.
    pub fn category(self) -> &'static str {
        match self {
            RegOp::Add | RegOp::Sub | RegOp::Mul | RegOp::Div | RegOp::Mod | RegOp::Neg => {
                "arithmetic"
            }
            RegOp::Lt | RegOp::Le | RegOp::Gt | RegOp::Ge | RegOp::Eq | RegOp::Ne => "comparison",
            RegOp::Not | RegOp::And | RegOp::Or | RegOp::Xor => "bitwise",
            RegOp::Sign | RegOp::Zero | RegOp::Abs | RegOp::Mux => "miscellaneous",
        }
    }
}

impl fmt::Display for RegOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegOp::Add => "add",
            RegOp::Sub => "sub",
            RegOp::Mul => "mul",
            RegOp::Div => "div",
            RegOp::Mod => "mod",
            RegOp::Neg => "neg",
            RegOp::Lt => "lt",
            RegOp::Le => "le",
            RegOp::Gt => "gt",
            RegOp::Ge => "ge",
            RegOp::Eq => "eq",
            RegOp::Ne => "ne",
            RegOp::Not => "not",
            RegOp::And => "and",
            RegOp::Or => "or",
            RegOp::Xor => "xor",
            RegOp::Sign => "sign",
            RegOp::Zero => "zero",
            RegOp::Abs => "abs",
            RegOp::Mux => "mux",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_support_matrix() {
        // Table II: every operation supports int32; all but Mod support
        // float32.
        for op in RegOp::ALL {
            assert!(op.supports(DType::Int32), "{op} must support int32");
            assert_eq!(
                op.supports(DType::Float32),
                op != RegOp::Mod,
                "{op} float support"
            );
        }
    }

    #[test]
    fn arity_partition() {
        let unary: Vec<_> = RegOp::ALL.iter().filter(|o| o.arity() == 1).collect();
        assert_eq!(unary.len(), 5); // neg, not, sign, zero, abs
        let ternary: Vec<_> = RegOp::ALL.iter().filter(|o| o.arity() == 3).collect();
        assert_eq!(ternary.len(), 1); // mux
    }

    #[test]
    fn categories_match_table2_sections() {
        let count = |cat: &str| RegOp::ALL.iter().filter(|o| o.category() == cat).count();
        assert_eq!(count("arithmetic"), 6);
        assert_eq!(count("comparison"), 6);
        assert_eq!(count("bitwise"), 4);
        assert_eq!(count("miscellaneous"), 4);
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = RegOp::ALL.iter().map(|o| o.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), RegOp::ALL.len());
    }
}
