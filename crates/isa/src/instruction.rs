use crate::{DType, RegOp};
use pim_arch::{ArchError, PimConfig, RangeMask, RegId, RowId, XbId};

/// The set of threads an instruction applies to: a range of warps
/// (crossbars) and, within each, a range of rows. Both follow the flexible
/// `start:stop:step` pattern that the microarchitecture's mask operations
/// support directly (§III-B), which is what makes tensor *views* (`x[::2]`)
/// zero-cost at the ISA level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadRange {
    /// Warps (crossbars) selected.
    pub warps: RangeMask,
    /// Rows selected within each warp.
    pub rows: RangeMask,
}

impl ThreadRange {
    /// Creates a thread range.
    pub fn new(warps: RangeMask, rows: RangeMask) -> Self {
        ThreadRange { warps, rows }
    }

    /// Every thread of every warp in `cfg`.
    pub fn all(cfg: &PimConfig) -> Self {
        ThreadRange {
            warps: RangeMask::dense(0, cfg.crossbars as u32).expect("nonzero crossbars"),
            rows: RangeMask::dense(0, cfg.rows as u32).expect("nonzero rows"),
        }
    }

    /// A single thread.
    pub fn single(warp: XbId, row: RowId) -> Self {
        ThreadRange {
            warps: RangeMask::single(warp),
            rows: RangeMask::single(row),
        }
    }

    /// Number of threads selected.
    pub fn len(&self) -> usize {
        self.warps.len() * self.rows.len()
    }

    /// Always `false`; a valid range selects at least one thread.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn validate(&self, cfg: &PimConfig) -> Result<(), ArchError> {
        self.warps.check_bound("warp", cfg.crossbars as u64)?;
        self.rows.check_bound("row", cfg.rows as u64)
    }
}

/// A PIM macro-instruction (§IV, Figure 11).
///
/// Register indices refer to the `R = user_regs` ISA-visible registers of
/// every thread; the host driver reserves the remaining intra-row offsets as
/// scratch space for compiling arithmetic routines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register operation applied thread-parallel across `target`
    /// (Figure 11a): `dst = op(srcs…)` in every selected thread.
    RType {
        /// Operation.
        op: RegOp,
        /// Element datatype.
        dtype: DType,
        /// Destination register.
        dst: RegId,
        /// Source registers; only the first [`RegOp::arity`] entries are
        /// meaningful.
        srcs: [RegId; 3],
        /// Threads to operate on.
        target: ThreadRange,
    },
    /// Warp-parallel thread-serial move (Figure 11b, intra-warp): for every
    /// selected warp, copy register `src` of row `src_rows[k]` into register
    /// `dst` of row `dst_rows[k]`, for each position `k`.
    ///
    /// `src_rows` and `dst_rows` must select the same number of rows and be
    /// disjoint row sets (a row cannot be both source and destination in
    /// one transfer).
    MoveRows {
        /// Source register.
        src: RegId,
        /// Destination register.
        dst: RegId,
        /// Source row pattern.
        src_rows: RangeMask,
        /// Destination row pattern.
        dst_rows: RangeMask,
        /// Warps to operate on (all pairs move in parallel across warps).
        warps: RangeMask,
    },
    /// Inter-warp move following the distributed H-tree pattern of §III-F:
    /// every selected warp `w` sends register `src` of row `row_src` to
    /// register `dst` of row `row_dst` in warp `w + dist`.
    MoveWarps {
        /// Source register.
        src: RegId,
        /// Destination register.
        dst: RegId,
        /// Row read in each source warp.
        row_src: RowId,
        /// Row written in each destination warp.
        row_dst: RowId,
        /// Source warps (step must be a power of 4).
        warps: RangeMask,
        /// Uniform warp distance (destination = source + dist).
        dist: i32,
    },
    /// Scalar read of one register of one thread.
    Read {
        /// Register to read.
        reg: RegId,
        /// Warp holding the thread.
        warp: XbId,
        /// Row of the thread.
        row: RowId,
    },
    /// Word write, broadcast across a thread range (typically constants).
    Write {
        /// Register to write.
        reg: RegId,
        /// Raw word value (for floats, the IEEE-754 bit pattern).
        value: u32,
        /// Threads to write.
        target: ThreadRange,
    },
}

impl Instruction {
    /// Validates register indices, thread ranges, and datatype support
    /// against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for an unsupported
    /// operation/dtype combination, [`ArchError::AddressOutOfBounds`] for
    /// out-of-range registers/threads, and [`ArchError::InvalidRange`] or
    /// [`ArchError::InvalidMove`] for malformed move patterns.
    pub fn validate(&self, cfg: &PimConfig) -> Result<(), ArchError> {
        let check_reg = |r: RegId| -> Result<(), ArchError> {
            if (r as usize) < cfg.user_regs {
                Ok(())
            } else {
                Err(ArchError::AddressOutOfBounds {
                    what: "ISA register",
                    value: r as u64,
                    bound: cfg.user_regs as u64,
                })
            }
        };
        match self {
            Instruction::RType {
                op,
                dtype,
                dst,
                srcs,
                target,
            } => {
                if !op.supports(*dtype) {
                    return Err(ArchError::InvalidConfig {
                        reason: format!("operation {op} does not support {dtype}"),
                    });
                }
                check_reg(*dst)?;
                for src in &srcs[..op.arity()] {
                    check_reg(*src)?;
                }
                target.validate(cfg)
            }
            Instruction::MoveRows {
                src,
                dst,
                src_rows,
                dst_rows,
                warps,
            } => {
                check_reg(*src)?;
                check_reg(*dst)?;
                warps.check_bound("warp", cfg.crossbars as u64)?;
                src_rows.check_bound("row", cfg.rows as u64)?;
                dst_rows.check_bound("row", cfg.rows as u64)?;
                if src_rows.len() != dst_rows.len() {
                    return Err(ArchError::InvalidRange {
                        reason: format!(
                            "source rows select {} rows but destination rows select {}",
                            src_rows.len(),
                            dst_rows.len()
                        ),
                    });
                }
                // Overlapping row sets are only executable when the pair
                // mapping is a uniform shift (equal strides): the driver
                // then orders the thread-serial transfers so every source
                // row is read before it is overwritten.
                let overlap = src_rows.iter().any(|r| dst_rows.contains(r));
                if overlap && src_rows.step() != dst_rows.step() {
                    return Err(ArchError::InvalidRange {
                        reason: "overlapping source/destination row sets require equal strides"
                            .into(),
                    });
                }
                Ok(())
            }
            Instruction::MoveWarps {
                src,
                dst,
                row_src,
                row_dst,
                warps,
                dist,
            } => {
                check_reg(*src)?;
                check_reg(*dst)?;
                warps.check_bound("warp", cfg.crossbars as u64)?;
                let mv = pim_arch::MoveOp {
                    dist: *dist,
                    row_src: *row_src,
                    row_dst: *row_dst,
                    index_src: *src,
                    index_dst: *dst,
                };
                pim_arch::MicroOp::Move(mv).validate(cfg)?;
                pim_arch::htree::plan_move(warps, &mv, cfg)?;
                Ok(())
            }
            Instruction::Read { reg, warp, row } => {
                check_reg(*reg)?;
                ThreadRange::single(*warp, *row).validate(cfg)
            }
            Instruction::Write { reg, target, .. } => {
                check_reg(*reg)?;
                target.validate(cfg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PimConfig {
        PimConfig::small() // user_regs = 16
    }

    fn rtype(op: RegOp, dtype: DType, dst: RegId, srcs: [RegId; 3]) -> Instruction {
        Instruction::RType {
            op,
            dtype,
            dst,
            srcs,
            target: ThreadRange::all(&cfg()),
        }
    }

    #[test]
    fn accepts_valid_rtype() {
        rtype(RegOp::Add, DType::Int32, 2, [0, 1, 0])
            .validate(&cfg())
            .unwrap();
        rtype(RegOp::Mux, DType::Float32, 3, [0, 1, 2])
            .validate(&cfg())
            .unwrap();
    }

    #[test]
    fn rejects_float_modulo() {
        let err = rtype(RegOp::Mod, DType::Float32, 2, [0, 1, 0])
            .validate(&cfg())
            .unwrap_err();
        assert!(matches!(err, ArchError::InvalidConfig { .. }));
    }

    #[test]
    fn rejects_scratch_register_access() {
        // Registers 16..32 exist physically but are driver scratch.
        let err = rtype(RegOp::Add, DType::Int32, 16, [0, 1, 0])
            .validate(&cfg())
            .unwrap_err();
        assert!(matches!(
            err,
            ArchError::AddressOutOfBounds {
                what: "ISA register",
                ..
            }
        ));
        let err = rtype(RegOp::Add, DType::Int32, 2, [16, 1, 0])
            .validate(&cfg())
            .unwrap_err();
        assert!(matches!(err, ArchError::AddressOutOfBounds { .. }));
    }

    #[test]
    fn unused_sources_are_not_validated() {
        // Unary op: srcs[1..] may hold garbage.
        rtype(RegOp::Neg, DType::Int32, 2, [0, 99, 99])
            .validate(&cfg())
            .unwrap();
    }

    #[test]
    fn move_rows_validation() {
        let c = cfg();
        let warps = RangeMask::dense(0, c.crossbars as u32).unwrap();
        // Even rows -> odd rows: equal counts, disjoint.
        Instruction::MoveRows {
            src: 0,
            dst: 1,
            src_rows: RangeMask::new(0, 62, 2).unwrap(),
            dst_rows: RangeMask::new(1, 63, 2).unwrap(),
            warps,
        }
        .validate(&c)
        .unwrap();
        // Mismatched counts.
        assert!(Instruction::MoveRows {
            src: 0,
            dst: 1,
            src_rows: RangeMask::new(0, 62, 2).unwrap(),
            dst_rows: RangeMask::new(1, 31, 2).unwrap(),
            warps,
        }
        .validate(&c)
        .is_err());
        // Overlapping sets with equal strides: allowed (uniform shift).
        Instruction::MoveRows {
            src: 0,
            dst: 1,
            src_rows: RangeMask::new(0, 32, 2).unwrap(),
            dst_rows: RangeMask::new(2, 34, 2).unwrap(),
            warps,
        }
        .validate(&c)
        .unwrap();
        // Overlapping sets with different strides: rejected.
        assert!(Instruction::MoveRows {
            src: 0,
            dst: 1,
            src_rows: RangeMask::new(0, 30, 2).unwrap(),
            dst_rows: RangeMask::new(1, 46, 3).unwrap(),
            warps,
        }
        .validate(&c)
        .is_err());
    }

    #[test]
    fn move_warps_validation() {
        let c = cfg();
        Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 0,
            row_dst: 0,
            warps: RangeMask::new(1, 13, 4).unwrap(),
            dist: 1,
        }
        .validate(&c)
        .unwrap();
        // Bad H-tree step.
        assert!(Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 0,
            row_dst: 0,
            warps: RangeMask::new(0, 6, 2).unwrap(),
            dist: 1,
        }
        .validate(&c)
        .is_err());
    }

    #[test]
    fn read_write_validation() {
        let c = cfg();
        Instruction::Read {
            reg: 0,
            warp: 15,
            row: 63,
        }
        .validate(&c)
        .unwrap();
        assert!(Instruction::Read {
            reg: 0,
            warp: 16,
            row: 0
        }
        .validate(&c)
        .is_err());
        Instruction::Write {
            reg: 1,
            value: 7,
            target: ThreadRange::all(&c),
        }
        .validate(&c)
        .unwrap();
        assert!(Instruction::Write {
            reg: 31,
            value: 7,
            target: ThreadRange::all(&c)
        }
        .validate(&c)
        .is_err());
    }

    #[test]
    fn thread_range_len() {
        let c = cfg();
        assert_eq!(ThreadRange::all(&c).len(), c.crossbars * c.rows);
        assert_eq!(ThreadRange::single(0, 0).len(), 1);
        assert!(!ThreadRange::all(&c).is_empty());
    }
}
