//! Client sessions: a [`ClusterClient`] is one caller's handle onto the
//! gateway, owning a private placement window in the device's warp space
//! and an async tensor-op vocabulary whose every step flows through the
//! gateway's admission controller.
//!
//! The op set mirrors the synchronous tensor library step for step
//! (uploads are per-element stores, elementwise ops are the same R-type
//! plans, reductions run the same compact-then-halve loop), so a request
//! served through the gateway produces **bit-identical** results to the
//! same program run synchronously — `tests/serve_contract.rs` holds the
//! stack to that.

use crate::gateway::GatewayInner;
use pim_isa::{DType, Instruction, RegOp};
use pypim_core::{identity_bits, plan_copy, CoreError, Device, PlacementHint, Result, Tensor};
use std::sync::Arc;

/// One client's session on the serving gateway.
///
/// Tensors created through the session allocate inside its private
/// placement window (including operation results and temporaries), so
/// concurrent sessions never contend for the same warp window's registers
/// — the failure mode that used to force serving front ends to bound
/// in-flight requests. Dropping the session releases the window's headroom
/// reservation; tensors created through it stay valid.
pub struct ClusterClient {
    gw: Arc<GatewayInner>,
    id: usize,
    window: PlacementHint,
    dev: Device,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("id", &self.id)
            .field("window", &self.window)
            .finish()
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        // The gateway holds the window reservation (so eviction can
        // release it early) and releases it inside `remove_session`.
        self.gw.remove_session(self.id);
    }
}

impl ClusterClient {
    pub(crate) fn new(
        gw: Arc<GatewayInner>,
        id: usize,
        window: PlacementHint,
        dev: Device,
    ) -> Self {
        ClusterClient {
            gw,
            id,
            window,
            dev,
        }
    }

    /// This session's placement window.
    pub fn window(&self) -> PlacementHint {
        self.window
    }

    /// This session's id on its gateway — the handle
    /// [`Gateway::evict_session`](crate::Gateway::evict_session) takes,
    /// and the `session` field of the typed admission errors.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The session's device handle (allocations through it land in the
    /// session window).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Submits one non-read instruction batch through the gateway's
    /// admission controller and resolves when it has executed.
    ///
    /// # Errors
    ///
    /// Surfaces validation and shard errors (a coalescing peer's failure in
    /// the same group also surfaces here — groups share fate).
    pub async fn exec(&self, instrs: Vec<Instruction>) -> Result<()> {
        self.gw.enqueue(self.id, instrs).await
    }

    /// Like [`exec`](ClusterClient::exec), but returns the gateway's
    /// [`ExecFuture`](crate::ExecFuture) directly: an owned future with no
    /// borrow of this handle. Admission happens *now* (the batch is queued
    /// before this returns); only polling pumps it through the device.
    /// This is the handle open-loop load generators keep in their
    /// in-flight tables — many may be outstanding per session, executing
    /// in admission (FIFO) order.
    pub fn submit(&self, instrs: Vec<Instruction>) -> crate::ExecFuture {
        self.gw.enqueue(self.id, instrs)
    }

    /// Like [`exec`](ClusterClient::exec), with a per-batch deadline of
    /// `deadline_cycles` modeled cycles from admission (overriding
    /// [`ServeConfig::deadline_cycles`](crate::ServeConfig); `0` disables
    /// the deadline for this batch). A batch still queued — or finishing —
    /// past its deadline resolves with
    /// [`CoreError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// As [`exec`](ClusterClient::exec), plus
    /// [`CoreError::DeadlineExceeded`], [`CoreError::Overloaded`] (full
    /// session queue), and [`CoreError::Evicted`] (session evicted under
    /// memory pressure).
    pub async fn exec_with_deadline(
        &self,
        instrs: Vec<Instruction>,
        deadline_cycles: u64,
    ) -> Result<()> {
        self.gw
            .enqueue_with_deadline(self.id, instrs, Some(deadline_cycles))
            .await
    }

    /// Reads raw words at `(warp, row, register)` locations, in order.
    /// Reads bypass coalescing (they end a request's pipeline) but still
    /// stream asynchronously.
    ///
    /// # Errors
    ///
    /// Surfaces addressing and shard errors.
    pub async fn read_locs(&self, locs: &[(u32, u32, u8)]) -> Result<Vec<u32>> {
        self.gw.dev.submit_reads(locs)?.await
    }

    /// Uploads a float slice into a fresh session tensor.
    ///
    /// # Errors
    ///
    /// Fails on allocation or execution errors.
    pub async fn upload_f32(&self, data: &[f32]) -> Result<Tensor> {
        let t = self.dev.uninit(data.len(), DType::Float32)?;
        self.exec(t.plan_store(data.iter().map(|v| v.to_bits())))
            .await?;
        Ok(t)
    }

    /// Uploads an int slice into a fresh session tensor.
    ///
    /// # Errors
    ///
    /// Fails on allocation or execution errors.
    pub async fn upload_i32(&self, data: &[i32]) -> Result<Tensor> {
        let t = self.dev.uninit(data.len(), DType::Int32)?;
        self.exec(t.plan_store(data.iter().map(|v| *v as u32)))
            .await?;
        Ok(t)
    }

    /// A session tensor of `n` copies of `value` (float32).
    ///
    /// # Errors
    ///
    /// Fails on allocation or execution errors.
    pub async fn full_f32(&self, n: usize, value: f32) -> Result<Tensor> {
        let t = self.dev.uninit(n, DType::Float32)?;
        self.exec(t.plan_fill(value.to_bits())).await?;
        Ok(t)
    }

    /// A session tensor of `n` copies of `value` (int32).
    ///
    /// # Errors
    ///
    /// Fails on allocation or execution errors.
    pub async fn full_i32(&self, n: usize, value: i32) -> Result<Tensor> {
        let t = self.dev.uninit(n, DType::Int32)?;
        self.exec(t.plan_fill(value as u32)).await?;
        Ok(t)
    }

    /// Copies `src` into `dst` (same length, any layouts): the planned move
    /// fast paths when one exists, a read-modify-write fallback otherwise —
    /// value-identical to the synchronous [`pypim_core::copy`].
    ///
    /// # Errors
    ///
    /// Fails on shape/device mismatches or execution errors.
    pub async fn copy(&self, src: &Tensor, dst: &Tensor) -> Result<()> {
        match plan_copy(src, dst)? {
            Some(plan) => self.exec(plan).await,
            None => {
                let values = self.read_locs(&src.element_locs()).await?;
                self.exec(dst.plan_store(values)).await
            }
        }
    }

    /// Element-parallel binary operation; a misaligned right-hand side is
    /// first copied next to the left one (the library's alignment
    /// fallback, run through the gateway).
    ///
    /// # Errors
    ///
    /// Fails on shape/dtype/device mismatches or execution errors.
    pub async fn binary(&self, op: RegOp, lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
        let (out, instrs) = match lhs.plan_binary(op, rhs) {
            Ok(planned) => planned,
            Err(CoreError::Misaligned { .. }) => {
                let aligned = lhs.empty_aligned(rhs.dtype())?;
                self.copy(rhs, &aligned).await?;
                lhs.plan_binary(op, &aligned)?
            }
            Err(e) => return Err(e),
        };
        self.exec(instrs).await?;
        Ok(out)
    }

    /// Element-parallel unary operation.
    ///
    /// # Errors
    ///
    /// Fails on allocation or execution errors.
    pub async fn unary(&self, op: RegOp, t: &Tensor) -> Result<Tensor> {
        let (out, instrs) = t.plan_unary(op)?;
        self.exec(instrs).await?;
        Ok(out)
    }

    /// `lhs + rhs`.
    ///
    /// # Errors
    ///
    /// See [`binary`](ClusterClient::binary).
    pub async fn add(&self, lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Add, lhs, rhs).await
    }

    /// `lhs * rhs`.
    ///
    /// # Errors
    ///
    /// See [`binary`](ClusterClient::binary).
    pub async fn mul(&self, lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Mul, lhs, rhs).await
    }

    /// Logarithmic-time reduction with `op` (`Add` or `Mul`) — the same
    /// compact-then-halve loop as the synchronous
    /// [`Tensor::reduce_raw`](pypim_core::Tensor), every step awaited
    /// through the gateway, so the combine order (and therefore every
    /// float rounding) is identical.
    ///
    /// # Errors
    ///
    /// Fails on allocation, movement, or execution errors.
    pub async fn reduce_raw(&self, t: &Tensor, op: RegOp) -> Result<u32> {
        assert!(
            matches!(op, RegOp::Add | RegOp::Mul),
            "reduction requires an associative ALU operation"
        );
        // Compact to a power-of-two dense layout padded with the identity.
        // The pad fill and the data copy ride one submission when a move
        // plan exists: the instruction order matches the synchronous
        // `compact_with_padding` exactly (fill first, copy after), and
        // dependent cells share warps, so shard-FIFO execution preserves
        // the order — one admission cycle instead of two.
        let n2 = t.len().next_power_of_two();
        let c = self.dev.uninit(n2, t.dtype())?;
        let prefix = c.slice(0, t.len())?;
        let mut instrs = c.plan_fill(identity_bits(op, t.dtype()));
        match plan_copy(t, &prefix)? {
            Some(plan) => {
                instrs.extend(plan);
                self.exec(instrs).await?;
            }
            None => {
                self.exec(instrs).await?;
                self.copy(t, &prefix).await?;
            }
        }
        // Halve: align the upper half with the lower, combine in parallel.
        // Each level's align-move and combine fuse into one submission the
        // same way.
        let mut cur = c;
        while cur.len() > 1 {
            let half = cur.len() / 2;
            let lo = cur.slice(0, half)?;
            let hi = cur.slice(half, cur.len())?;
            let hi_aligned = lo.empty_aligned(hi.dtype())?;
            cur = match plan_copy(&hi, &hi_aligned)? {
                Some(mut plan) => {
                    let (combined, bin) = lo.plan_binary(op, &hi_aligned)?;
                    plan.extend(bin);
                    self.exec(plan).await?;
                    combined
                }
                None => {
                    self.copy(&hi, &hi_aligned).await?;
                    self.binary(op, &lo, &hi_aligned).await?
                }
            };
        }
        let locs = cur.element_locs();
        Ok(self.read_locs(&locs).await?[0])
    }

    /// Sum of all elements (float32).
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors or on reduction errors.
    pub async fn sum_f32(&self, t: &Tensor) -> Result<f32> {
        if t.dtype() != DType::Float32 {
            return Err(CoreError::DTypeMismatch {
                what: format!("expected float32, tensor holds {}", t.dtype()),
            });
        }
        Ok(f32::from_bits(self.reduce_raw(t, RegOp::Add).await?))
    }

    /// Sum of all elements (int32, wrapping).
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors or on reduction errors.
    pub async fn sum_i32(&self, t: &Tensor) -> Result<i32> {
        if t.dtype() != DType::Int32 {
            return Err(CoreError::DTypeMismatch {
                what: format!("expected int32, tensor holds {}", t.dtype()),
            });
        }
        Ok(self.reduce_raw(t, RegOp::Add).await? as i32)
    }

    /// Reads a whole tensor back as floats.
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors or on read errors.
    pub async fn to_vec_f32(&self, t: &Tensor) -> Result<Vec<f32>> {
        if t.dtype() != DType::Float32 {
            return Err(CoreError::DTypeMismatch {
                what: format!("expected float32, tensor holds {}", t.dtype()),
            });
        }
        let bits = self.read_locs(&t.element_locs()).await?;
        Ok(bits.into_iter().map(f32::from_bits).collect())
    }

    /// Reads a whole tensor back as ints.
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors or on read errors.
    pub async fn to_vec_i32(&self, t: &Tensor) -> Result<Vec<i32>> {
        if t.dtype() != DType::Int32 {
            return Err(CoreError::DTypeMismatch {
                what: format!("expected int32, tensor holds {}", t.dtype()),
            });
        }
        let bits = self.read_locs(&t.element_locs()).await?;
        Ok(bits.into_iter().map(|b| b as i32).collect())
    }
}
