//! # pim-serve
//!
//! An **async multi-client serving gateway** over the PyPIM stack: the
//! subsystem that lets *one host thread* keep many client requests in
//! flight against a sharded [`Device::cluster`] — the end-to-end
//! host-to-PIM serving story of the paper (conf_micro_LeitersdorfRK24)
//! scaled from one program to heavy multi-user traffic.
//!
//! Three mechanisms compose:
//!
//! * **Pollable completion** — cluster job tickets are futures
//!   ([`pim_cluster::JobTicket`]): a shard worker wakes the registered
//!   waker the instant a batch finishes, so nothing spins and nothing
//!   blocks between submissions.
//! * **Admission control and coalescing** — every session step enters a
//!   per-session queue; the gateway drains the queues fairly (round-robin)
//!   and coalesces steps from many sessions into one shared device
//!   submission, keeping a bounded number of such groups in flight
//!   (backpressure). See [`ServeConfig`].
//! * **Per-client placement** — each session reserves a private warp
//!   window ([`pypim_core::PlacementHint`]); its tensors, results, and
//!   temporaries allocate there, so concurrent requests never exhaust a
//!   shared window's registers and chip-local windows keep whole requests
//!   on one shard. No in-flight bound is needed for memory safety anymore.
//!
//! Results are **bit-identical** to serving every client sequentially
//! through the synchronous tensor API: sessions touch disjoint stripes
//! (their instructions commute), each session awaits its steps in program
//! order, and the async ops replay the exact synchronous instruction plans
//! (`tests/serve_contract.rs`).
//!
//! Beyond stepwise ops, a [`RequestPlan`] fuses a whole request — uploads,
//! element-parallel ops, every reduction level — into **one** submission
//! plus one read, collapsing a request's ~2·log n admission round trips
//! (something the blocking tensor API structurally cannot do, since it
//! must execute-and-wait per op).
//!
//! # Example
//!
//! ```
//! use futures::executor::block_on;
//! use futures::future::join_all;
//! use pim_arch::PimConfig;
//! use pim_serve::{ClusterClient, DeviceServeExt, ServeConfig};
//! use pypim_core::{Device, Result};
//!
//! async fn request(client: &ClusterClient, data: &[f32]) -> Result<f32> {
//!     let x = client.upload_f32(data).await?;
//!     let y = client.full_f32(data.len(), 2.0).await?;
//!     let xy = client.mul(&x, &y).await?;
//!     let z = client.add(&xy, &x).await?;
//!     client.sum_f32(&z).await // sum(x * 2 + x)
//! }
//!
//! # fn main() -> Result<()> {
//! let dev = Device::cluster(PimConfig::small().with_crossbars(4), 4)?;
//! let gateway = dev.serve(ServeConfig::default());
//! let clients: Vec<ClusterClient> =
//!     (0..4).map(|_| gateway.session()).collect::<Result<_>>()?;
//!
//! // One host thread drives all four requests concurrently.
//! let results = block_on(join_all(
//!     clients.iter().map(|c| request(c, &[1.0, 2.0, 3.0, 4.0])),
//! ));
//! for r in results {
//!     assert_eq!(r?, 30.0);
//! }
//! assert!(gateway.stats().groups > 0);
//! # Ok(())
//! # }
//! ```

mod gateway;
mod plan;
mod session;

pub use gateway::{ExecFuture, Gateway, GatewayStats};
pub use pim_telemetry::{MetricsSnapshot, RequestId, RequestStats, Telemetry};
pub use plan::RequestPlan;
pub use session::ClusterClient;

use pypim_core::Device;

/// Tuning of the gateway's admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum coalesced submissions in flight at once (backpressure:
    /// further client batches queue).
    pub max_inflight: usize,
    /// Maximum client batches coalesced into one submission (at most one
    /// per session — fairness is round-robin).
    pub max_coalesce: usize,
    /// Warp-window size reserved per session; `0` sizes windows to an
    /// eighth of the device's warp space.
    pub session_warps: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: 4,
            max_coalesce: 8,
            session_warps: 0,
        }
    }
}

/// Extension hanging the serving entry point off [`Device`] — `dev.serve(…)`
/// builds the gateway (the trait exists because `Gateway` lives above the
/// tensor library in the crate graph).
pub trait DeviceServeExt {
    /// Builds a serving gateway over this device.
    fn serve(&self, cfg: ServeConfig) -> Gateway;
}

impl DeviceServeExt for Device {
    fn serve(&self, cfg: ServeConfig) -> Gateway {
        Gateway::new(self.clone(), cfg)
    }
}
