//! # pim-serve
//!
//! An **async multi-client serving gateway** over the PyPIM stack: the
//! subsystem that lets *one host thread* keep many client requests in
//! flight against a sharded [`Device::cluster`] — the end-to-end
//! host-to-PIM serving story of the paper (conf_micro_LeitersdorfRK24)
//! scaled from one program to heavy multi-user traffic.
//!
//! Three mechanisms compose:
//!
//! * **Pollable completion** — cluster job tickets are futures
//!   ([`pim_cluster::JobTicket`]): a shard worker wakes the registered
//!   waker the instant a batch finishes, so nothing spins and nothing
//!   blocks between submissions.
//! * **Admission control and coalescing** — every session step enters a
//!   per-session queue; the gateway drains the queues fairly (round-robin)
//!   and coalesces steps from many sessions into one shared device
//!   submission, keeping a bounded number of such groups in flight
//!   (backpressure). See [`ServeConfig`].
//! * **Per-client placement** — each session reserves a private warp
//!   window ([`pypim_core::PlacementHint`]); its tensors, results, and
//!   temporaries allocate there, so concurrent requests never exhaust a
//!   shared window's registers and chip-local windows keep whole requests
//!   on one shard. No in-flight bound is needed for memory safety anymore.
//!
//! Results are **bit-identical** to serving every client sequentially
//! through the synchronous tensor API: sessions touch disjoint stripes
//! (their instructions commute), each session awaits its steps in program
//! order, and the async ops replay the exact synchronous instruction plans
//! (`tests/serve_contract.rs`).
//!
//! Beyond stepwise ops, a [`RequestPlan`] fuses a whole request — uploads,
//! element-parallel ops, every reduction level — into **one** submission
//! plus one read, collapsing a request's ~2·log n admission round trips
//! (something the blocking tensor API structurally cannot do, since it
//! must execute-and-wait per op).
//!
//! # Example
//!
//! ```
//! use futures::executor::block_on;
//! use futures::future::join_all;
//! use pim_arch::PimConfig;
//! use pim_serve::{ClusterClient, DeviceServeExt, ServeConfig};
//! use pypim_core::{Device, Result};
//!
//! async fn request(client: &ClusterClient, data: &[f32]) -> Result<f32> {
//!     let x = client.upload_f32(data).await?;
//!     let y = client.full_f32(data.len(), 2.0).await?;
//!     let xy = client.mul(&x, &y).await?;
//!     let z = client.add(&xy, &x).await?;
//!     client.sum_f32(&z).await // sum(x * 2 + x)
//! }
//!
//! # fn main() -> Result<()> {
//! let dev = Device::cluster(PimConfig::small().with_crossbars(4), 4)?;
//! let gateway = dev.serve(ServeConfig::default());
//! let clients: Vec<ClusterClient> =
//!     (0..4).map(|_| gateway.session()).collect::<Result<_>>()?;
//!
//! // One host thread drives all four requests concurrently.
//! let results = block_on(join_all(
//!     clients.iter().map(|c| request(c, &[1.0, 2.0, 3.0, 4.0])),
//! ));
//! for r in results {
//!     assert_eq!(r?, 30.0);
//! }
//! assert!(gateway.stats().groups > 0);
//! # Ok(())
//! # }
//! ```

mod gateway;
mod plan;
mod session;

pub use gateway::{ExecFuture, Gateway, GatewayHost, GatewayStats};
pub use pim_telemetry::{MetricsSnapshot, RequestId, RequestStats, Telemetry};
pub use plan::RequestPlan;
pub use session::ClusterClient;

use pypim_core::Device;

/// Tuning of the gateway's admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum coalesced submissions in flight at once (backpressure:
    /// further client batches queue).
    pub max_inflight: usize,
    /// Maximum client batches coalesced into one submission (at most one
    /// per session — fairness is round-robin).
    pub max_coalesce: usize,
    /// Warp-window size reserved per session; `0` sizes windows to an
    /// eighth of the device's warp space.
    pub session_warps: u32,
    /// Maximum batches waiting in one session queue; further admissions
    /// fail fast with [`pypim_core::CoreError::Overloaded`]. `0` means
    /// unbounded.
    pub max_queue_depth: usize,
    /// Times a batch that failed with a *transient* error (worker crash,
    /// link fault — see [`pypim_core::ErrorClass::Transient`]) is retried
    /// before the error surfaces to the client.
    pub max_retries: u32,
    /// Modeled-cycle backoff charged before a retry; the `n`-th retry
    /// advances the modeled clock by `retry_backoff_cycles << n`. No
    /// wall-clock time is spent.
    pub retry_backoff_cycles: u64,
    /// Default per-batch deadline in modeled cycles from admission;
    /// batches still queued (or completing) past it resolve with
    /// [`pypim_core::CoreError::DeadlineExceeded`]. `0` disables
    /// deadlines (per-request deadlines via
    /// [`ClusterClient::exec_with_deadline`] still apply).
    pub deadline_cycles: u64,
    /// When the warp space is exhausted, evict the least-recently-active
    /// session (its pending batches fail with
    /// [`pypim_core::CoreError::Evicted`]) instead of refusing the new
    /// session.
    pub evict_on_pressure: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: 4,
            max_coalesce: 8,
            session_warps: 0,
            max_queue_depth: 64,
            max_retries: 2,
            retry_backoff_cycles: 1_000,
            deadline_cycles: 0,
            evict_on_pressure: false,
        }
    }
}

/// Extension hanging the serving entry point off [`Device`] — `dev.serve(…)`
/// builds the gateway (the trait exists because `Gateway` lives above the
/// tensor library in the crate graph).
pub trait DeviceServeExt {
    /// Builds a serving gateway over this device.
    fn serve(&self, cfg: ServeConfig) -> Gateway;
}

impl DeviceServeExt for Device {
    fn serve(&self, cfg: ServeConfig) -> Gateway {
        Gateway::new(self.clone(), cfg)
    }
}
