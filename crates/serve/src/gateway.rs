//! The serving gateway: admission control and batch coalescing between
//! many client sessions and one [`Device`].
//!
//! Clients never talk to the device directly. Each session enqueues
//! instruction batches into its own queue; the *pump* drains those queues
//! fairly (round-robin, at most one batch per session per group), coalesces
//! what it takes into one shared submission, and keeps a bounded number of
//! such groups in flight. There is no background thread: pumping happens
//! cooperatively on whichever thread polls a request future or completes a
//! shard job, so a single `block_on(join_all(requests))` host thread drives
//! the whole gateway.
//!
//! Safety of coalescing: sessions allocate in disjoint placement windows
//! (see [`MemoryManager::reserve_window`](pypim_core::MemoryManager)), so
//! instructions of different sessions touch disjoint stripes and commute;
//! within one session the client awaits each step before planning the next,
//! so a session never has two batches in flight — results are bit-identical
//! to running every client sequentially.

use crate::{ClusterClient, ServeConfig};
use parking_lot::Mutex;
use pim_isa::Instruction;
use pim_telemetry::{
    Gauge, Histogram, MetricsSnapshot, MetricsSource, RequestId, RequestStats, Telemetry,
    TrackHandle,
};
use pypim_core::{CoreError, Device, ErrorClass, PlacementHint, Result, StepTicket, TaggedBatch};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Completion slot shared between one client batch's [`ExecFuture`] and the
/// gateway (which fills it when the batch's group finishes).
#[derive(Debug, Default)]
pub(crate) struct BatchSlot {
    state: Mutex<SlotState>,
}

#[derive(Debug, Default)]
struct SlotState {
    done: Option<Result<()>>,
    /// Modeled cycle at which the outcome was recorded. Survives
    /// `take_done` so a driver polling many futures after one pump drain
    /// can still recover each batch's true completion time.
    completed_at: Option<u64>,
    waker: Option<Waker>,
}

impl BatchSlot {
    fn take_done(&self) -> Option<Result<()>> {
        self.state.lock().done.take()
    }

    fn completed_at(&self) -> Option<u64> {
        self.state.lock().completed_at
    }

    fn set_waker(&self, waker: &Waker) {
        self.state.lock().waker = Some(waker.clone());
    }

    fn take_waker(&self) -> Option<Waker> {
        self.state.lock().waker.take()
    }

    fn complete(&self, result: Result<()>, at: u64) {
        let waker = {
            let mut st = self.state.lock();
            st.done = Some(result);
            st.completed_at = Some(at);
            st.waker.take()
        };
        // Outside the lock: waking may immediately re-poll the future.
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// One client batch waiting in a session queue.
struct PendingBatch {
    instrs: Vec<Instruction>,
    slot: Arc<BatchSlot>,
    /// Whether the batch streams asynchronously (no chip-crossing moves),
    /// computed once at enqueue time off the state lock — the pump's
    /// worker-wake path consults this on every completion.
    streams_async: bool,
    /// Request identity the batch's modeled cycles, cross-chip words, and
    /// queue wait are attributed to (`s{session}.r{seq}`).
    request: RequestId,
    /// Modeled-clock reading at admission; the span from here to submission
    /// is the request's queue wait.
    enqueued_at: u64,
    /// Owning session's queue slot (retries re-enqueue here).
    session: usize,
    /// Generation of the owning slot at admission; a retry is dropped if
    /// the slot was since recycled by session churn.
    session_gen: u64,
    /// Absolute modeled-cycle deadline, if one applies. Checked when the
    /// pump considers the batch and again when its group completes.
    deadline: Option<u64>,
    /// Completed submission attempts so far (transient failures retry up
    /// to [`ServeConfig::max_retries`] times).
    attempts: u32,
}

/// Telemetry of the gateway's admission controller.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GatewayStats {
    /// Coalesced submissions issued to the device.
    pub groups: u64,
    /// Client batches those submissions carried.
    pub batches: u64,
    /// Macro-instructions those submissions carried.
    pub instructions: u64,
    /// Most client batches ever coalesced into one submission.
    pub max_coalesced: u64,
    /// Most groups ever in flight at once.
    pub peak_inflight: u64,
    /// Groups deferred from a shard-worker thread to a client thread
    /// because they contained chip-crossing moves (which execute inline).
    pub deferred: u64,
    /// Sessions opened so far.
    pub sessions: u64,
    /// Batches resubmitted after a transient shard or link failure.
    pub retries: u64,
    /// Batches that resolved with [`CoreError::DeadlineExceeded`] — still
    /// queued past their deadline, or finished after it.
    pub deadline_misses: u64,
    /// Batches refused at admission because their session queue was full
    /// ([`CoreError::Overloaded`]).
    pub rejected_overload: u64,
    /// Sessions evicted under memory pressure.
    pub evicted: u64,
}

impl MetricsSource for GatewayStats {
    fn fill_metrics(&self, snap: &mut MetricsSnapshot) {
        snap.set_counter("serve.groups", self.groups);
        snap.set_counter("serve.batches", self.batches);
        snap.set_counter("serve.instructions", self.instructions);
        snap.set_counter("serve.deferred", self.deferred);
        snap.set_counter("serve.sessions", self.sessions);
        snap.set_counter("serve.retries", self.retries);
        snap.set_counter("serve.deadline_misses", self.deadline_misses);
        snap.set_counter("serve.rejected_overload", self.rejected_overload);
        snap.set_counter("serve.evicted", self.evicted);
        snap.set_gauge("serve.max_coalesced", self.max_coalesced as i64);
        snap.set_gauge("serve.peak_inflight", self.peak_inflight as i64);
    }
}

#[derive(Default)]
struct State {
    queues: Vec<VecDeque<PendingBatch>>,
    /// Per-queue-slot request sequence counters. Monotonic across session
    /// churn (a reused slot keeps counting), so a `RequestId` is never
    /// reissued within one gateway.
    seqs: Vec<u32>,
    /// Placement window each open session still holds; `None` once the
    /// session closed or was evicted (the window is released then).
    windows: Vec<Option<PlacementHint>>,
    /// Slots evicted under memory pressure: queued batches were failed
    /// with [`CoreError::Evicted`] and further admissions are refused
    /// until the client drops and the slot is recycled.
    evicted: Vec<bool>,
    /// Per-slot recycle generation; in-flight batches of a closed session
    /// compare against it so a retry never lands in a stranger's queue.
    gens: Vec<u64>,
    /// Modeled-clock reading of each session's latest admission — the
    /// recency signal of the eviction policy.
    last_active: Vec<u64>,
    /// Queue slots of closed sessions, reused by the next `add_session`
    /// so a long-running gateway with session churn stays bounded.
    free_slots: Vec<usize>,
    /// Round-robin cursor over session queues.
    rr: usize,
    /// Coalesced submissions currently in flight.
    inflight: usize,
    stats: GatewayStats,
}

pub(crate) struct GatewayInner {
    pub(crate) dev: Device,
    pub(crate) cfg: ServeConfig,
    /// Admission track on the device's telemetry: one `queue` span per
    /// admitted batch, from enqueue to coalesced submission.
    track: TrackHandle,
    /// `serve.queue_wait_cycles` — modeled cycles a batch waited in its
    /// session queue before submission.
    queue_wait: Histogram,
    /// `serve.group_batches` — client batches per coalesced submission.
    group_size: Histogram,
    /// `serve.queue_depth` — client batches currently waiting in session
    /// queues, across all sessions. Updated at every queue mutation
    /// (enqueue, pop, expiry, retry re-enqueue, session teardown/eviction),
    /// so a point-in-time snapshot or counter track sees real occupancy.
    queue_depth: Gauge,
    /// `serve.in_flight` — client batches inside coalesced submissions
    /// currently executing on the device.
    in_flight: Gauge,
    state: Mutex<State>,
}

/// What one pump iteration popped.
enum Popped {
    /// A group to submit (batches removed from their queues).
    Submit(Vec<PendingBatch>),
    /// The head group needs inline execution (chip-crossing moves) but the
    /// pumping thread is a shard worker that must not block on its own
    /// queue; the batches stay queued and these client wakers re-pump from
    /// a safe thread.
    Defer(Vec<Waker>),
    /// Nothing to do (no pending work or no in-flight budget).
    Idle,
}

impl GatewayInner {
    /// Registers a new session queue (reusing a closed session's slot when
    /// one is free), returning its id. The gateway takes custody of the
    /// session's placement window so eviction can release it early.
    pub(crate) fn add_session(&self, window: PlacementHint) -> usize {
        let now = self.dev.telemetry().now();
        let mut st = self.state.lock();
        st.stats.sessions += 1;
        match st.free_slots.pop() {
            Some(id) => {
                st.windows[id] = Some(window);
                st.evicted[id] = false;
                st.last_active[id] = now;
                id
            }
            None => {
                st.queues.push(VecDeque::new());
                st.seqs.push(0);
                st.windows.push(Some(window));
                st.evicted.push(false);
                st.gens.push(0);
                st.last_active.push(now);
                st.queues.len() - 1
            }
        }
    }

    /// Closes a session: releases its placement window (unless eviction
    /// already did), returns its queue slot to the free pool, and fails
    /// any still-queued batches with [`CoreError::Evicted`]. A client can
    /// drop with work queued — a cancelled request future leaves its batch
    /// behind — and that work must resolve, never execute for a dead
    /// session or trip an assert.
    pub(crate) fn remove_session(&self, session: usize) {
        let (window, orphans) = {
            let mut st = self.state.lock();
            let orphans: Vec<PendingBatch> = st.queues[session].drain(..).collect();
            self.queue_depth.add(-(orphans.len() as i64));
            st.gens[session] += 1;
            st.free_slots.push(session);
            (st.windows[session].take(), orphans)
        };
        if let Some(w) = window {
            self.dev.release_placement(w);
        }
        // Outside the lock: completing a slot may wake its (cancelled)
        // future's waker.
        let now = self.dev.telemetry().now();
        for b in orphans {
            b.slot.complete(Err(CoreError::Evicted { session }), now);
        }
    }

    /// Evicts a session under memory pressure: releases its placement
    /// window, fails its queued batches with [`CoreError::Evicted`], and
    /// refuses its future admissions. The client handle stays alive;
    /// dropping it recycles the slot as usual.
    pub(crate) fn evict_slot(&self, session: usize) {
        let (window, dropped) = {
            let mut st = self.state.lock();
            if st.evicted[session] {
                return;
            }
            st.evicted[session] = true;
            st.stats.evicted += 1;
            let dropped: Vec<PendingBatch> = st.queues[session].drain(..).collect();
            self.queue_depth.add(-(dropped.len() as i64));
            (st.windows[session].take(), dropped)
        };
        if let Some(w) = window {
            self.dev.release_placement(w);
        }
        let now = self.dev.telemetry().now();
        for b in dropped {
            b.slot.complete(Err(CoreError::Evicted { session }), now);
        }
    }

    /// The open session that has been inactive longest and still holds a
    /// placement window — the eviction victim under memory pressure.
    pub(crate) fn lru_session(&self) -> Option<usize> {
        let st = self.state.lock();
        (0..st.queues.len())
            .filter(|&s| st.windows[s].is_some())
            .min_by_key(|&s| st.last_active[s])
    }

    /// Enqueues one client batch and returns the future resolving when the
    /// gateway has executed it.
    pub(crate) fn enqueue(
        self: &Arc<Self>,
        session: usize,
        instrs: Vec<Instruction>,
    ) -> ExecFuture {
        self.enqueue_with_deadline(session, instrs, None)
    }

    /// Like [`enqueue`](GatewayInner::enqueue), with `deadline_cycles`
    /// overriding [`ServeConfig::deadline_cycles`] for this batch
    /// (modeled cycles from admission; `Some(0)` disables the deadline).
    ///
    /// Admission can fail fast: an evicted session gets
    /// [`CoreError::Evicted`], a full session queue gets
    /// [`CoreError::Overloaded`] — both resolve through the returned
    /// future without touching the device.
    pub(crate) fn enqueue_with_deadline(
        self: &Arc<Self>,
        session: usize,
        instrs: Vec<Instruction>,
        deadline_cycles: Option<u64>,
    ) -> ExecFuture {
        let slot = Arc::new(BatchSlot::default());
        if instrs.is_empty() {
            slot.complete(Ok(()), self.dev.telemetry().now());
            return ExecFuture::new(Arc::clone(self), slot);
        }
        // Route classification happens here, off the state lock, so
        // the pump never re-validates batches on the completion path.
        let streams_async = self.dev.instrs_stream_async(&instrs);
        let enqueued_at = self.dev.telemetry().now();
        let deadline = match deadline_cycles.unwrap_or(self.cfg.deadline_cycles) {
            0 => None,
            d => Some(enqueued_at.saturating_add(d)),
        };
        let rejected = {
            let mut st = self.state.lock();
            if st.evicted[session] {
                Some(CoreError::Evicted { session })
            } else if self.cfg.max_queue_depth > 0
                && st.queues[session].len() >= self.cfg.max_queue_depth
            {
                st.stats.rejected_overload += 1;
                Some(CoreError::Overloaded {
                    session,
                    depth: st.queues[session].len(),
                })
            } else {
                st.last_active[session] = enqueued_at;
                let seq = st.seqs[session];
                st.seqs[session] = seq.wrapping_add(1);
                let session_gen = st.gens[session];
                st.queues[session].push_back(PendingBatch {
                    instrs,
                    slot: Arc::clone(&slot),
                    streams_async,
                    request: RequestId::new(session as u32, seq),
                    enqueued_at,
                    session,
                    session_gen,
                    deadline,
                    attempts: 0,
                });
                self.queue_depth.add(1);
                None
            }
        };
        if let Some(e) = rejected {
            slot.complete(Err(e), enqueued_at);
        }
        ExecFuture::new(Arc::clone(self), slot)
    }

    /// Pops the next coalesced group under the state lock (or decides to
    /// defer/idle). `from_worker` marks calls arriving from a shard-worker
    /// wake: those threads must never run an inline (chip-crossing)
    /// submission, because blocking a worker on a job queued to itself
    /// deadlocks the shard.
    /// Returns batches whose deadline has passed (to fail outside the
    /// lock) alongside the pump decision.
    fn pop_group(&self, from_worker: bool) -> (Vec<PendingBatch>, Popped) {
        let now = self.dev.telemetry().now();
        let mut st = self.state.lock();
        // Deadline sweep: expired batches leave their queues before group
        // formation, whatever the in-flight budget says — they must not
        // consume device time.
        let mut expired: Vec<PendingBatch> = Vec::new();
        for q in &mut st.queues {
            let mut i = 0;
            while i < q.len() {
                if q[i].deadline.is_some_and(|d| now > d) {
                    expired.extend(q.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        st.stats.deadline_misses += expired.len() as u64;
        self.queue_depth.add(-(expired.len() as i64));
        if st.inflight >= self.cfg.max_inflight {
            return (expired, Popped::Idle);
        }
        let n = st.queues.len();
        if n == 0 {
            return (expired, Popped::Idle);
        }
        // Fair draining: scan sessions round-robin from the cursor, taking
        // at most one batch per session.
        let mut take: Vec<usize> = Vec::new();
        for k in 0..n {
            if take.len() >= self.cfg.max_coalesce {
                break;
            }
            let s = (st.rr + k) % n;
            if !st.queues[s].is_empty() {
                take.push(s);
            }
        }
        if take.is_empty() {
            return (expired, Popped::Idle);
        }
        if from_worker {
            let crossing = take
                .iter()
                .any(|&s| !st.queues[s].front().expect("non-empty queue").streams_async);
            if crossing {
                st.stats.deferred += 1;
                let wakers = take
                    .iter()
                    .filter_map(|&s| st.queues[s].front().and_then(|b| b.slot.take_waker()))
                    .collect();
                return (expired, Popped::Defer(wakers));
            }
        }
        let batches: Vec<PendingBatch> = take
            .iter()
            .map(|&s| st.queues[s].pop_front().expect("non-empty queue"))
            .collect();
        st.rr = (st.rr + 1) % n;
        st.inflight += 1;
        self.queue_depth.add(-(batches.len() as i64));
        self.in_flight.add(batches.len() as i64);
        st.stats.groups += 1;
        st.stats.batches += batches.len() as u64;
        st.stats.instructions += batches.iter().map(|b| b.instrs.len() as u64).sum::<u64>();
        st.stats.max_coalesced = st.stats.max_coalesced.max(batches.len() as u64);
        st.stats.peak_inflight = st.stats.peak_inflight.max(st.inflight as u64);
        (expired, Popped::Submit(batches))
    }

    /// Drains session queues into coalesced in-flight submissions until the
    /// in-flight budget is exhausted or no work is pending. Runs on client
    /// poll threads (`from_worker = false`) and on shard-worker completion
    /// wakes (`from_worker = true`).
    pub(crate) fn pump(self: &Arc<Self>, from_worker: bool) {
        loop {
            let (expired, popped) = self.pop_group(from_worker);
            if !expired.is_empty() {
                let now = self.dev.telemetry().now();
                for b in expired {
                    let deadline = b.deadline.unwrap_or(now);
                    b.slot
                        .complete(Err(CoreError::DeadlineExceeded { deadline, now }), now);
                }
            }
            match popped {
                Popped::Idle => return,
                Popped::Defer(wakers) => {
                    for w in wakers {
                        w.wake();
                    }
                    return;
                }
                Popped::Submit(mut batches) => {
                    let recording = self.track.is_enabled();
                    let now = self.dev.telemetry().now();
                    let mut tagged = Vec::with_capacity(batches.len());
                    for b in &mut batches {
                        if recording {
                            let wait = now.saturating_sub(b.enqueued_at);
                            self.queue_wait.record(wait);
                            self.track.record_complete(
                                "queue",
                                b.enqueued_at,
                                wait,
                                b.request,
                                Some(("instructions", b.instrs.len() as u64)),
                            );
                            self.dev.telemetry().attribute(
                                b.request,
                                RequestStats {
                                    queue_wait: wait,
                                    ..Default::default()
                                },
                            );
                        }
                        tagged.push(TaggedBatch {
                            request: b.request,
                            instrs: std::mem::take(&mut b.instrs),
                        });
                    }
                    if recording {
                        self.group_size.record(tagged.len() as u64);
                    }
                    let submitted = self.dev.submit_tagged(&tagged);
                    // The instruction plans move back into their batches:
                    // a transient shard failure retries them as-is, with
                    // no re-planning and no clone on the happy path.
                    for (b, t) in batches.iter_mut().zip(tagged) {
                        b.instrs = t.instrs;
                    }
                    match submitted {
                        Err(e) => self.finish_group(batches, Err(e)),
                        Ok(ticket) => Group::attach(Arc::clone(self), ticket, batches),
                    }
                    // Loop: budget may allow another group.
                }
            }
        }
    }

    /// Delivers a finished group's outcome to its member batches and frees
    /// its in-flight budget. A transient failure (worker crash, link
    /// fault) re-enqueues members that still have retry budget at the
    /// front of their session queues, charging an exponential backoff to
    /// the modeled clock; a missed deadline overrides any outcome.
    /// Deliberately does *not* pump — the caller decides (the pump loop
    /// continues by itself; a worker wake pumps explicitly after
    /// completion).
    fn finish_group(&self, batches: Vec<PendingBatch>, result: Result<()>) {
        let now = self.dev.telemetry().now();
        let transient = matches!(&result, Err(e) if e.class() == ErrorClass::Transient);
        let mut deliver: Vec<(Arc<BatchSlot>, Result<()>)> = Vec::with_capacity(batches.len());
        {
            let mut st = self.state.lock();
            st.inflight -= 1;
            self.in_flight.add(-(batches.len() as i64));
            for mut b in batches {
                if let Some(d) = b.deadline.filter(|&d| now > d) {
                    st.stats.deadline_misses += 1;
                    deliver.push((
                        b.slot,
                        Err(CoreError::DeadlineExceeded { deadline: d, now }),
                    ));
                } else if transient
                    && b.attempts < self.cfg.max_retries
                    && b.session_gen == st.gens[b.session]
                    && !st.evicted[b.session]
                {
                    b.attempts += 1;
                    st.stats.retries += 1;
                    // Exponential backoff, charged to the modeled clock —
                    // no wall-clock wait, but the retry's queue span and
                    // any deadline see the delay.
                    let shift = (b.attempts - 1).min(32);
                    let backoff = self.cfg.retry_backoff_cycles << shift;
                    self.dev
                        .telemetry()
                        .advance_clock(now.saturating_add(backoff));
                    let session = b.session;
                    st.queues[session].push_front(b);
                    self.queue_depth.add(1);
                } else {
                    deliver.push((b.slot, result.clone()));
                }
            }
        }
        // Outside the lock: completing a slot may wake a client future.
        // Stamped with this group's completion cycle — not the cycle at
        // which the client eventually polls — so open-loop drivers see
        // accurate per-batch completion times even when one pump call
        // drains many groups back to back.
        for (slot, r) in deliver {
            slot.complete(r, now);
        }
    }

    pub(crate) fn stats(&self) -> GatewayStats {
        self.state.lock().stats
    }
}

/// Drives one in-flight coalesced submission: registered as the waker of
/// the submission's shard tickets, it re-polls them on every shard
/// completion and, once all are done, delivers the outcome and pumps the
/// next group.
struct Group {
    gw: Arc<GatewayInner>,
    inner: Mutex<Option<(StepTicket, Vec<PendingBatch>)>>,
}

impl Group {
    fn attach(gw: Arc<GatewayInner>, ticket: StepTicket, batches: Vec<PendingBatch>) {
        let group = Arc::new(Group {
            gw,
            inner: Mutex::new(Some((ticket, batches))),
        });
        // First poll registers the group as the tickets' waker (or
        // completes immediately for ready tickets).
        group.try_complete();
    }

    /// Polls the submission; on completion delivers results. Returns
    /// whether the group finished.
    fn try_complete(self: &Arc<Self>) -> bool {
        let mut guard = self.inner.lock();
        let Some((mut ticket, batches)) = guard.take() else {
            return false; // already completed by another wake
        };
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        match Pin::new(&mut ticket).poll(&mut cx) {
            Poll::Pending => {
                *guard = Some((ticket, batches));
                false
            }
            Poll::Ready(result) => {
                drop(guard);
                self.gw.finish_group(batches, result);
                true
            }
        }
    }
}

impl Wake for Group {
    fn wake(self: Arc<Self>) {
        // Runs on the shard-worker thread that completed a ticket: finish
        // the group if it is done, then pump follow-up work (never inline
        // crossing batches from here — see `pop_group`).
        if self.try_complete() {
            self.gw.pump(true);
        }
    }
}

/// Future of one client batch moving through the gateway: registers its
/// waker, pumps cooperatively, and resolves when the batch's coalesced
/// group has executed. Groups pipeline rather than barrier: a session can
/// run ahead of its peers as long as in-flight budget remains, and
/// coalescing happens whenever multiple sessions' steps are queued at pump
/// time (always under budget pressure).
pub struct ExecFuture {
    gw: Arc<GatewayInner>,
    slot: Arc<BatchSlot>,
}

impl ExecFuture {
    pub(crate) fn new(gw: Arc<GatewayInner>, slot: Arc<BatchSlot>) -> Self {
        ExecFuture { gw, slot }
    }

    /// Modeled cycle at which the batch's outcome was recorded, or `None`
    /// while still pending. One gateway pump can retire several coalesced
    /// groups before the client regains control, so the clock observed at
    /// poll time overstates latency; this reports the group's actual
    /// completion cycle. Remains available after the future resolves.
    pub fn completed_at(&self) -> Option<u64> {
        self.slot.completed_at()
    }
}

impl Future for ExecFuture {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(result) = self.slot.take_done() {
            return Poll::Ready(result);
        }
        // Register before pumping: a group completing on a worker thread
        // between the check above and the pump below must find the waker.
        self.slot.set_waker(cx.waker());
        self.gw.pump(false);
        if let Some(result) = self.slot.take_done() {
            return Poll::Ready(result);
        }
        Poll::Pending
    }
}

/// The async multi-client serving gateway (see the crate docs).
///
/// Cloning is cheap; clones share the admission controller.
#[derive(Clone)]
pub struct Gateway {
    pub(crate) inner: Arc<GatewayInner>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.inner.cfg)
            .field("stats", &self.inner.stats())
            .finish()
    }
}

impl Gateway {
    /// Builds a gateway over `dev` (typically a [`Device::cluster`] — a
    /// single-chip device works too, executing submissions inline).
    pub fn new(dev: Device, cfg: ServeConfig) -> Gateway {
        let telemetry = dev.telemetry();
        let track = telemetry.track("gateway/admission");
        let queue_wait = telemetry.metrics().histogram("serve.queue_wait_cycles");
        let group_size = telemetry.metrics().histogram("serve.group_batches");
        let queue_depth = telemetry.metrics().gauge("serve.queue_depth");
        let in_flight = telemetry.metrics().gauge("serve.in_flight");
        Gateway {
            inner: Arc::new(GatewayInner {
                dev,
                cfg,
                track,
                queue_wait,
                group_size,
                queue_depth,
                in_flight,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The device behind the gateway.
    pub fn device(&self) -> &Device {
        &self.inner.dev
    }

    /// Opens a client session with its own placement window (sized by
    /// [`ServeConfig::session_warps`], or an even share of the warp space
    /// when 0).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no disjoint window is left.
    pub fn session(&self) -> Result<ClusterClient> {
        let warps = match self.inner.cfg.session_warps {
            0 => {
                let total = self.inner.dev.config().crossbars as u32;
                (total / 8).max(1)
            }
            w => w,
        };
        self.session_with_warps(warps)
    }

    /// Opens a client session whose placement window spans `warps` warps.
    ///
    /// With [`ServeConfig::evict_on_pressure`] set, an exhausted warp
    /// space evicts the least-recently-active session (repeatedly, until
    /// the reservation fits or no evictable session remains) instead of
    /// failing.
    ///
    /// # Errors
    ///
    /// See [`session`](Gateway::session); additionally fails for zero
    /// `warps`.
    pub fn session_with_warps(&self, warps: u32) -> Result<ClusterClient> {
        if warps == 0 {
            return Err(CoreError::InvalidSlice {
                what: "session window must span at least one warp".into(),
            });
        }
        let window = loop {
            match self.inner.dev.reserve_placement(warps) {
                Ok(w) => break w,
                Err(e @ CoreError::OutOfMemory { .. }) if self.inner.cfg.evict_on_pressure => {
                    match self.inner.lru_session() {
                        Some(victim) => self.inner.evict_slot(victim),
                        None => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        };
        let id = self.inner.add_session(window);
        Ok(ClusterClient::new(
            Arc::clone(&self.inner),
            id,
            window,
            self.inner.dev.with_placement(window),
        ))
    }

    /// Evicts a session by id (see [`ClusterClient::id`]): its placement
    /// window is released, queued batches fail with
    /// [`CoreError::Evicted`], and further admissions from it are refused.
    /// The client handle stays usable only for inspecting state; dropping
    /// it recycles the slot.
    pub fn evict_session(&self, session: usize) {
        self.inner.evict_slot(session);
    }

    /// Telemetry of the admission controller (coalescing and in-flight
    /// depth).
    pub fn stats(&self) -> GatewayStats {
        self.inner.stats()
    }

    /// The telemetry handle shared by the gateway, the device, and (for a
    /// cluster) every shard worker. `gw.telemetry().set_enabled(true)`
    /// starts recording admission spans, shard execution slices,
    /// interconnect bursts, and per-request attribution — all on the
    /// modeled clock.
    pub fn telemetry(&self) -> &Telemetry {
        self.inner.dev.telemetry()
    }

    /// One unified [`MetricsSnapshot`] across every layer under this
    /// gateway: the admission controller's own counters (`serve.*`,
    /// including the queue-wait/group-size histograms), the cluster and
    /// interconnect counters (`cluster.*`), and the simulator profiler
    /// (`sim.*`).
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived.
    pub fn metrics_snapshot(&self) -> Result<MetricsSnapshot> {
        let mut snap = self.inner.dev.metrics_snapshot()?;
        self.stats().fill_metrics(&mut snap);
        Ok(snap)
    }

    /// Per-session attribution rollup: `(session, requests, stats)` with
    /// modeled cycles, cross-chip words, link cycles, and queue wait summed
    /// over each session's recorded requests. Empty unless telemetry is
    /// enabled.
    pub fn session_stats(&self) -> Vec<(u32, u64, RequestStats)> {
        self.inner.dev.telemetry().session_stats()
    }

    /// Sessions currently open on this gateway: slots that still hold a
    /// placement window (closed and evicted sessions have released
    /// theirs). The load signal a multi-host router balances on.
    pub fn active_sessions(&self) -> usize {
        let st = self.inner.state.lock();
        st.windows.iter().filter(|w| w.is_some()).count()
    }
}

/// The router-facing surface of one serving host.
///
/// A fleet router places sessions, balances on load, and scrapes
/// observability — nothing more. [`Gateway`] implements this in-process;
/// the methods take `&self`, return owned data, and never expose gateway
/// internals, so an RPC proxy to a remote host can implement the same
/// surface later without changing the router.
pub trait GatewayHost {
    /// Opens a client session on this host (see [`Gateway::session`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no placement window is
    /// left on the host.
    fn open_session(&self) -> Result<ClusterClient>;

    /// Sessions currently open (the router's load signal).
    fn active_sessions(&self) -> usize;

    /// Evicts a session by id: its queued work fails with
    /// [`CoreError::Evicted`] and further admissions are refused.
    fn evict_session(&self, session: usize);

    /// The host's telemetry handle (modeled clock, metrics registry).
    fn telemetry(&self) -> &Telemetry;

    /// One unified metrics snapshot across every layer of the host.
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a worker thread died unrecoverably.
    fn metrics_snapshot(&self) -> Result<MetricsSnapshot>;
}

impl GatewayHost for Gateway {
    fn open_session(&self) -> Result<ClusterClient> {
        self.session()
    }

    fn active_sessions(&self) -> usize {
        Gateway::active_sessions(self)
    }

    fn evict_session(&self, session: usize) {
        Gateway::evict_session(self, session);
    }

    fn telemetry(&self) -> &Telemetry {
        Gateway::telemetry(self)
    }

    fn metrics_snapshot(&self) -> Result<MetricsSnapshot> {
        Gateway::metrics_snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterClient, DeviceServeExt, ServeConfig};
    use futures::executor::block_on;
    use futures::future::join_all;
    use pim_arch::PimConfig;
    use pypim_core::Device;

    /// 4 chips x 4 crossbars x 64 rows, 16 logical warps.
    fn dev4() -> Device {
        Device::cluster(PimConfig::small().with_crossbars(4), 4).unwrap()
    }

    async fn request(client: &ClusterClient, n: usize, seed: f32) -> Result<f32> {
        let data: Vec<f32> = (0..n).map(|i| seed + i as f32).collect();
        let x = client.upload_f32(&data).await?;
        let y = client.full_f32(n, 2.0).await?;
        let xy = client.mul(&x, &y).await?;
        let z = client.add(&xy, &x).await?;
        client.sum_f32(&z).await
    }

    fn expect(n: usize, seed: f32) -> f32 {
        (0..n).map(|i| (seed + i as f32) * 3.0).sum()
    }

    #[test]
    fn sessions_reserve_disjoint_windows_until_exhausted() {
        let gw = dev4().serve(ServeConfig::default());
        // 16 warps / auto window of 2 -> 8 sessions.
        let sessions: Vec<ClusterClient> = (0..8).map(|_| gw.session().unwrap()).collect();
        for (i, a) in sessions.iter().enumerate() {
            for b in sessions.iter().skip(i + 1) {
                assert!(!a.window().overlaps(&b.window()), "sessions alias");
            }
        }
        assert!(gw.session().is_err(), "window space exhausted");
        drop(sessions);
        // Released windows become reservable again.
        assert!(gw.session().is_ok());
    }

    #[test]
    fn session_slots_are_reused_after_drop() {
        let gw = dev4().serve(ServeConfig::default());
        for i in 0..20 {
            let client = gw.session_with_warps(4).unwrap();
            block_on(request(&client, 8, i as f32)).unwrap();
        }
        assert_eq!(gw.stats().sessions, 20);
        // Session churn must not grow the queue table: every closed
        // session's slot is recycled.
        assert_eq!(gw.inner.state.lock().queues.len(), 1);
    }

    #[test]
    fn backpressure_bounds_inflight_groups() {
        let gw = dev4().serve(ServeConfig {
            max_inflight: 2,
            ..ServeConfig::default()
        });
        let clients: Vec<ClusterClient> =
            (0..6).map(|_| gw.session_with_warps(2).unwrap()).collect();
        let results = block_on(join_all(clients.iter().map(|c| request(c, 16, 1.0))));
        for r in results {
            assert_eq!(r.unwrap(), expect(16, 1.0));
        }
        let stats = gw.stats();
        assert!(stats.groups > 0);
        assert!(
            stats.peak_inflight <= 2,
            "budget exceeded: {} in flight",
            stats.peak_inflight
        );
    }

    #[test]
    fn budget_pressure_coalesces_batches() {
        // With a single in-flight slot, batches of the waiting sessions
        // accumulate and must go out as one coalesced submission.
        let gw = dev4().serve(ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        });
        let clients: Vec<ClusterClient> =
            (0..4).map(|_| gw.session_with_warps(2).unwrap()).collect();
        let results = block_on(join_all(clients.iter().map(|c| request(c, 8, 2.0))));
        for r in results {
            assert_eq!(r.unwrap(), expect(8, 2.0));
        }
        let stats = gw.stats();
        assert!(
            stats.max_coalesced >= 2,
            "no coalescing observed: {stats:?}"
        );
        assert_eq!(stats.peak_inflight, 1);
        assert!(stats.batches >= stats.groups);
    }

    #[test]
    fn single_chip_device_serves_inline() {
        let gw = Device::new(PimConfig::small())
            .unwrap()
            .serve(ServeConfig::default());
        let clients: Vec<ClusterClient> =
            (0..3).map(|_| gw.session_with_warps(4).unwrap()).collect();
        let results = block_on(join_all(clients.iter().map(|c| request(c, 12, 0.5))));
        for r in results {
            assert_eq!(r.unwrap(), expect(12, 0.5));
        }
    }

    #[test]
    fn protocol_violations_surface_to_the_client() {
        let gw = dev4().serve(ServeConfig::default());
        let client = gw.session().unwrap();
        let err = block_on(client.exec(vec![pim_isa::Instruction::Read {
            reg: 0,
            warp: 0,
            row: 0,
        }]))
        .unwrap_err();
        assert!(matches!(err, CoreError::Protocol { .. }), "{err:?}");
        // The gateway survives the failed group.
        assert_eq!(block_on(request(&client, 8, 3.0)).unwrap(), expect(8, 3.0));
    }

    #[test]
    fn empty_batch_resolves_immediately() {
        let gw = dev4().serve(ServeConfig::default());
        let client = gw.session().unwrap();
        block_on(client.exec(Vec::new())).unwrap();
        assert_eq!(gw.stats().groups, 0, "empty batches skip the device");
    }

    /// One store into the session's window — a minimal valid batch.
    fn store_batch(client: &ClusterClient) -> Vec<Instruction> {
        let t = client.device().uninit(4, pim_isa::DType::Int32).unwrap();
        t.plan_store([1u32, 2, 3, 4])
    }

    #[test]
    fn full_session_queue_rejects_with_overloaded() {
        let gw = dev4().serve(ServeConfig {
            max_queue_depth: 2,
            ..ServeConfig::default()
        });
        let client = gw.session().unwrap();
        // Enqueue without polling: `GatewayInner::enqueue` admits
        // synchronously; only a poll pumps.
        let f1 = gw.inner.enqueue(client.id(), store_batch(&client));
        let f2 = gw.inner.enqueue(client.id(), store_batch(&client));
        let rejected = block_on(gw.inner.enqueue(client.id(), store_batch(&client)));
        assert!(
            matches!(rejected, Err(CoreError::Overloaded { session, depth })
                if session == client.id() && depth == 2),
            "{rejected:?}"
        );
        assert_eq!(gw.stats().rejected_overload, 1);
        // The queued work is unharmed by the rejection.
        block_on(f1).unwrap();
        block_on(f2).unwrap();
    }

    #[test]
    fn queued_batch_expires_at_pump_time() {
        let gw = dev4().serve(ServeConfig::default());
        let client = gw.session().unwrap();
        // Deadline 10 cycles from a clock at 0; blow past it before the
        // first poll ever pumps.
        let fut = gw
            .inner
            .enqueue_with_deadline(client.id(), store_batch(&client), Some(10));
        gw.telemetry().advance_clock(1_000);
        let err = block_on(fut).unwrap_err();
        assert!(
            matches!(err, CoreError::DeadlineExceeded { deadline: 10, now } if now >= 1_000),
            "{err:?}"
        );
        assert_eq!(gw.stats().deadline_misses, 1);
        // A deadline-free batch still runs.
        block_on(client.exec(store_batch(&client))).unwrap();
    }

    #[test]
    fn memory_pressure_evicts_the_least_recent_session() {
        let gw = dev4().serve(ServeConfig {
            evict_on_pressure: true,
            session_warps: 8,
            ..ServeConfig::default()
        });
        // 16 warps: two 8-warp sessions exhaust the space.
        let a = gw.session().unwrap();
        let b = gw.session().unwrap();
        block_on(request(&b, 8, 1.0)).unwrap(); // `a` is now least recent
        let c = gw.session().expect("eviction must free a window");
        assert_eq!(gw.stats().evicted, 1);
        let err = block_on(a.exec(store_batch(&a))).unwrap_err();
        assert!(
            matches!(err, CoreError::Evicted { session } if session == a.id()),
            "{err:?}"
        );
        // Survivor and newcomer still serve.
        assert_eq!(block_on(request(&b, 8, 2.0)).unwrap(), expect(8, 2.0));
        assert_eq!(block_on(request(&c, 8, 3.0)).unwrap(), expect(8, 3.0));
    }

    #[test]
    fn depth_and_inflight_gauges_track_queue_occupancy() {
        let gw = dev4().serve(ServeConfig::default());
        let depth = gw.telemetry().metrics().gauge("serve.queue_depth");
        let in_flight = gw.telemetry().metrics().gauge("serve.in_flight");
        let client = gw.session().unwrap();
        // Admission without polling: batches sit queued, nothing in flight.
        let f1 = gw.inner.enqueue(client.id(), store_batch(&client));
        let f2 = gw.inner.enqueue(client.id(), store_batch(&client));
        assert_eq!(depth.get(), 2);
        assert_eq!(in_flight.get(), 0);
        block_on(f1).unwrap();
        block_on(f2).unwrap();
        // Everything executed: both gauges are back to zero.
        assert_eq!(depth.get(), 0);
        assert_eq!(in_flight.get(), 0);
        // A cancelled future's orphaned batch leaves the gauge on session
        // teardown, and a rejected admission never touches it.
        let gw2 = dev4().serve(ServeConfig {
            max_queue_depth: 1,
            ..ServeConfig::default()
        });
        let depth2 = gw2.telemetry().metrics().gauge("serve.queue_depth");
        let client2 = gw2.session().unwrap();
        let fut = gw2.inner.enqueue(client2.id(), store_batch(&client2));
        let rejected = block_on(gw2.inner.enqueue(client2.id(), store_batch(&client2)));
        assert!(matches!(rejected, Err(CoreError::Overloaded { .. })));
        assert_eq!(depth2.get(), 1);
        drop(fut);
        drop(client2);
        assert_eq!(depth2.get(), 0);
    }

    #[test]
    fn active_sessions_tracks_open_windows() {
        let gw = dev4().serve(ServeConfig::default());
        assert_eq!(gw.active_sessions(), 0);
        let a = gw.session_with_warps(4).unwrap();
        let b = gw.session_with_warps(4).unwrap();
        assert_eq!(gw.active_sessions(), 2);
        // Eviction releases the window: the session no longer counts.
        gw.evict_session(a.id());
        assert_eq!(gw.active_sessions(), 1);
        drop(b);
        assert_eq!(gw.active_sessions(), 0);
        // The router-facing trait sees the same numbers.
        let host: &dyn GatewayHost = &gw;
        let c = host.open_session().unwrap();
        assert_eq!(host.active_sessions(), 1);
        drop(c);
        drop(a);
    }

    #[test]
    fn dropping_a_session_with_queued_work_drains_it() {
        let gw = dev4().serve(ServeConfig::default());
        let client = gw.session().unwrap();
        // A cancelled request future leaves its batch queued.
        let fut = gw.inner.enqueue(client.id(), store_batch(&client));
        drop(fut);
        drop(client); // must drain, not assert or leak
        assert_eq!(
            gw.inner
                .state
                .lock()
                .queues
                .iter()
                .map(|q| q.len())
                .sum::<usize>(),
            0
        );
        // The recycled slot serves a fresh session.
        let client = gw.session().unwrap();
        assert_eq!(block_on(request(&client, 8, 4.0)).unwrap(), expect(8, 4.0));
    }
}
