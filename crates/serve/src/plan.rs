//! Fused request pipelines: a [`RequestPlan`] accumulates the instruction
//! stream of a whole request — uploads, element-parallel ops, every level
//! of a reduction — and submits it as **one** gateway batch, collapsing a
//! request's ~2·log n admission round trips into a single submission plus
//! one read.
//!
//! This is the structural advantage the planning API buys the gateway over
//! the blocking tensor library: the blocking API must execute-and-wait per
//! op (each result might be read next), while a session that declares its
//! whole request up front lets dependent instructions ride one shard-FIFO
//! stream. Fusing preserves bit-identical semantics: the instructions and
//! their order are exactly the stepwise ones, and every data dependency in
//! a session window is same-warp (element-wise ops) or same-shard
//! (intra-window moves), which the per-shard FIFO job channels order
//! correctly. A plan that would need a chip-crossing move still works —
//! the submission falls back to inline barrier-aware execution.
//!
//! Memory discipline: planned tensors allocate at *plan* time, and
//! intermediate stripes freed during planning may be reused by *later*
//! instructions of the same plan (safe: planning order equals execution
//! order, and the allocator's hard window reservations keep every other
//! client out of the session's window, so nobody else can claim a
//! recycled stripe while its instructions are in flight). The plan
//! therefore needs its session window to hold only the simultaneously-live
//! stripes, just like stepwise execution.

use crate::ClusterClient;
use pim_isa::{DType, Instruction, RegOp};
use pypim_core::{identity_bits, plan_copy, CoreError, Result, Tensor};

/// An unsubmitted request pipeline on one session (see the module docs).
/// Build it with [`ClusterClient::plan`], chain ops, then
/// [`run`](RequestPlan::run) once.
///
/// Plans on one session must be run in the order they were built: a later
/// plan's allocations may recycle stripes an earlier unsubmitted plan
/// still references, which is only correct if the earlier plan's
/// instructions reach the shards first (sessions that `await` each plan
/// before building the next — the normal pattern — get this for free).
pub struct RequestPlan<'c> {
    client: &'c ClusterClient,
    instrs: Vec<Instruction>,
}

impl<'c> RequestPlan<'c> {
    pub(crate) fn new(client: &'c ClusterClient) -> Self {
        RequestPlan {
            client,
            instrs: Vec::new(),
        }
    }

    /// Instructions planned so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether nothing has been planned yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Plans uploading a float slice into a fresh session tensor.
    ///
    /// # Errors
    ///
    /// Fails on allocation errors.
    pub fn upload_f32(&mut self, data: &[f32]) -> Result<Tensor> {
        let t = self.client.device().uninit(data.len(), DType::Float32)?;
        self.instrs
            .extend(t.plan_store(data.iter().map(|v| v.to_bits())));
        Ok(t)
    }

    /// Plans uploading an int slice into a fresh session tensor.
    ///
    /// # Errors
    ///
    /// Fails on allocation errors.
    pub fn upload_i32(&mut self, data: &[i32]) -> Result<Tensor> {
        let t = self.client.device().uninit(data.len(), DType::Int32)?;
        self.instrs
            .extend(t.plan_store(data.iter().map(|v| *v as u32)));
        Ok(t)
    }

    /// Plans a tensor of `n` copies of `value` (float32).
    ///
    /// # Errors
    ///
    /// Fails on allocation errors.
    pub fn full_f32(&mut self, n: usize, value: f32) -> Result<Tensor> {
        let t = self.client.device().uninit(n, DType::Float32)?;
        self.instrs.extend(t.plan_fill(value.to_bits()));
        Ok(t)
    }

    /// Plans a tensor of `n` copies of `value` (int32).
    ///
    /// # Errors
    ///
    /// Fails on allocation errors.
    pub fn full_i32(&mut self, n: usize, value: i32) -> Result<Tensor> {
        let t = self.client.device().uninit(n, DType::Int32)?;
        self.instrs.extend(t.plan_fill(value as u32));
        Ok(t)
    }

    /// Plans an element-parallel binary operation. Operands must be
    /// thread-aligned (tensors of one session built over the same length
    /// are); use the stepwise [`ClusterClient::binary`] for layouts that
    /// need the move-based alignment fallback.
    ///
    /// # Errors
    ///
    /// Fails on shape/dtype/device mismatches, misalignment, or allocation
    /// errors.
    pub fn binary(&mut self, op: RegOp, lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
        let (out, instrs) = lhs.plan_binary(op, rhs)?;
        self.instrs.extend(instrs);
        Ok(out)
    }

    /// Plans an element-parallel unary operation.
    ///
    /// # Errors
    ///
    /// Fails on allocation errors.
    pub fn unary(&mut self, op: RegOp, t: &Tensor) -> Result<Tensor> {
        let (out, instrs) = t.plan_unary(op)?;
        self.instrs.extend(instrs);
        Ok(out)
    }

    /// `lhs + rhs`.
    ///
    /// # Errors
    ///
    /// See [`binary`](RequestPlan::binary).
    pub fn add(&mut self, lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Add, lhs, rhs)
    }

    /// `lhs * rhs`.
    ///
    /// # Errors
    ///
    /// See [`binary`](RequestPlan::binary).
    pub fn mul(&mut self, lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Mul, lhs, rhs)
    }

    /// Plans the whole logarithmic reduction of `t` with `op` (`Add` or
    /// `Mul`), returning the one-element result tensor to read after
    /// [`run`](RequestPlan::run). Same compact-then-halve loop as the
    /// stepwise reduction — identical instructions, identical float
    /// combine order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Misaligned`] for layouts whose alignment moves
    /// have no instruction plan (use the stepwise
    /// [`ClusterClient::reduce_raw`] there), plus allocation errors.
    pub fn reduce(&mut self, t: &Tensor, op: RegOp) -> Result<Tensor> {
        assert!(
            matches!(op, RegOp::Add | RegOp::Mul),
            "reduction requires an associative ALU operation"
        );
        let no_plan = || CoreError::Misaligned {
            what: "this layout's alignment moves cannot be planned; use the \
                   stepwise reduction"
                .into(),
        };
        let n2 = t.len().next_power_of_two();
        let c = self.client.device().uninit(n2, t.dtype())?;
        self.instrs
            .extend(c.plan_fill(identity_bits(op, t.dtype())));
        let prefix = c.slice(0, t.len())?;
        self.instrs
            .extend(plan_copy(t, &prefix)?.ok_or_else(no_plan)?);
        let mut cur = c;
        while cur.len() > 1 {
            let half = cur.len() / 2;
            let lo = cur.slice(0, half)?;
            let hi = cur.slice(half, cur.len())?;
            let hi_aligned = lo.empty_aligned(hi.dtype())?;
            self.instrs
                .extend(plan_copy(&hi, &hi_aligned)?.ok_or_else(no_plan)?);
            let (combined, bin) = lo.plan_binary(op, &hi_aligned)?;
            self.instrs.extend(bin);
            // Dropping the previous level's stripes here lets later plan
            // allocations recycle them — safe because planning order is
            // execution order within the session's shard streams.
            cur = combined;
        }
        Ok(cur)
    }

    /// Submits the whole plan as one gateway batch and resolves when it
    /// has executed. Read results afterwards with
    /// [`ClusterClient::to_vec_f32`] / [`read_locs`](ClusterClient::read_locs).
    ///
    /// # Errors
    ///
    /// Surfaces validation and shard errors.
    pub async fn run(self) -> Result<()> {
        self.client.exec(self.instrs).await
    }

    /// Finishes the plan *without* submitting, returning the fused
    /// instruction batch. Load generators build a plan once per request
    /// shape and replay clones of the batch through
    /// [`ClusterClient::submit`]; the tensors planned into it must outlive
    /// every replay (replays write the same stripes, in admission order).
    pub fn into_instrs(self) -> Vec<Instruction> {
        self.instrs
    }
}

impl ClusterClient {
    /// Starts a fused request pipeline (see [`RequestPlan`]).
    pub fn plan(&self) -> RequestPlan<'_> {
        RequestPlan::new(self)
    }
}
