//! Differential oracle: the functional backend must produce bit-identical
//! architectural state and identical profiling counters to the
//! bit-accurate simulator for the same micro-operation stream — both
//! op-by-op and batched (where dead-store elimination runs).

use pim_arch::{Backend, ColAddr, GateKind, HLogic, MicroOp, MoveOp, PimConfig, RangeMask, VGate};
use pim_func::{AnyBackend, BackendKind, FuncBackend};
use pim_sim::PimSimulator;
use proptest::prelude::*;

fn assert_same_state(sim: &PimSimulator, func: &FuncBackend, cfg: &PimConfig) {
    for xb in 0..cfg.crossbars {
        for row in 0..cfg.rows {
            for reg in 0..cfg.regs {
                assert_eq!(
                    sim.peek(xb, row, reg),
                    func.peek(xb, row, reg),
                    "cell mismatch at xb {xb} row {row} reg {reg}"
                );
            }
        }
    }
    let (sp, fp) = (sim.profiler(), func.profiler());
    assert_eq!(sp.cycles, fp.cycles, "modeled cycles diverge");
    assert_eq!(sp.ops, fp.ops, "per-type op counts diverge");
    assert_eq!(sp.gates, fp.gates, "gate counts diverge");
    assert_eq!(sp.row_gates, fp.row_gates, "row-gate counts diverge");
    assert_eq!(sp.move_pairs, fp.move_pairs, "move pairs diverge");
    assert_eq!(sp.max_move_level, fp.max_move_level, "move levels diverge");
}

/// Same generator shape as the simulator's own batch-equals-serial fuzz:
/// seeds map onto (possibly invalid) operations, invalid ones are skipped.
fn arbitrary_op(cfg: &PimConfig, seed: (u8, u8, u8, u8, u8, u8, u8)) -> Option<MicroOp> {
    let (kind, a, b, c, d, e, f) = seed;
    let regs = cfg.regs as u8;
    let rows = cfg.rows as u32;
    let xbs = cfg.crossbars as u32;
    Some(match kind % 5 {
        0 => MicroOp::XbMask(
            RangeMask::strided(a as u32 % xbs, 1 + b as u32 % 3, 1 + c as u32 % 2)
                .ok()
                .filter(|m| m.stop() < xbs)?,
        ),
        1 => MicroOp::RowMask(
            RangeMask::strided(a as u32 % rows, 1 + b as u32 % 4, 1 + c as u32 % 3)
                .ok()
                .filter(|m| m.stop() < rows)?,
        ),
        2 => MicroOp::Write {
            index: a % regs,
            value: u32::from_le_bytes([b, c, d, e]),
        },
        3 => MicroOp::LogicH(
            HLogic::strided(
                [
                    GateKind::Init0,
                    GateKind::Init1,
                    GateKind::Not,
                    GateKind::Nor,
                ][f as usize % 4],
                ColAddr::new(a % 8, b % regs),
                ColAddr::new(a % 8 + c % 4, d % regs),
                ColAddr::new(a % 8 + e % 4, f % regs),
                (a % 8 + e % 4) + (c % 3) * 8,
                8,
                cfg,
            )
            .ok()?,
        ),
        _ => MicroOp::LogicV {
            gate: [VGate::Init0, VGate::Init1, VGate::Not][a as usize % 3],
            row_in: b as u32 % rows,
            row_out: c as u32 % rows,
            index: d % regs,
        },
    })
}

/// Interleaves single-source moves (with their mask) into a stream so the
/// distributed path is exercised under valid H-tree patterns.
fn with_moves(cfg: &PimConfig, ops: &mut Vec<MicroOp>, seeds: &[(u8, u8, u8, u8)]) {
    let xbs = cfg.crossbars as u32;
    let rows = cfg.rows as u32;
    let regs = cfg.regs as u8;
    // Positions are computed against the base stream and spliced in
    // descending order so every mask+move pair stays adjacent — a later
    // insertion can never change the mask a move executes under.
    let mut pairs: Vec<(usize, [MicroOp; 2])> = seeds
        .iter()
        .filter_map(|&(a, b, c, d)| {
            let src = a as u32 % xbs;
            let dst = b as u32 % xbs;
            if src == dst {
                return None;
            }
            let at = (a as usize * 31 + b as usize) % (ops.len() + 1);
            Some((
                at,
                [
                    MicroOp::XbMask(RangeMask::single(src)),
                    MicroOp::Move(MoveOp {
                        dist: dst as i32 - src as i32,
                        row_src: c as u32 % rows,
                        row_dst: d as u32 % rows,
                        index_src: c % regs,
                        index_dst: d % regs,
                    }),
                ],
            ))
        })
        .collect();
    pairs.sort_by_key(|p| std::cmp::Reverse(p.0));
    for (at, pair) in pairs {
        ops.splice(at..at, pair);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Op-by-op execution: every read-back and every profiler counter of
    /// the functional backend matches the bit-accurate simulator.
    #[test]
    fn serial_matches_simulator(
        seeds in proptest::collection::vec(any::<(u8, u8, u8, u8, u8, u8, u8)>(), 1..48),
        move_seeds in proptest::collection::vec(any::<(u8, u8, u8, u8)>(), 0..4),
    ) {
        let cfg = PimConfig::small().with_crossbars(32).with_rows(16);
        let mut ops: Vec<MicroOp> =
            seeds.iter().filter_map(|&s| arbitrary_op(&cfg, s)).collect();
        with_moves(&cfg, &mut ops, &move_seeds);
        prop_assume!(!ops.is_empty());
        let mut sim = PimSimulator::new(cfg.clone()).unwrap();
        let mut func = FuncBackend::new(cfg.clone()).unwrap();
        sim.set_strict(false); // random gates may hit uninitialized cells
        for op in &ops {
            let s = sim.execute(op);
            let f = func.execute(op);
            prop_assert_eq!(s.is_ok(), f.is_ok(), "acceptance diverges on {:?}", op);
            if let (Ok(sv), Ok(fv)) = (s, f) {
                prop_assert_eq!(sv, fv, "read value diverges on {:?}", op);
            }
        }
        assert_same_state(&sim, &func, &cfg);
    }

    /// Batched execution (dead-store elimination active) leaves identical
    /// state and identical modeled cycles to the simulator's batch path.
    #[test]
    fn batch_matches_simulator(
        seeds in proptest::collection::vec(any::<(u8, u8, u8, u8, u8, u8, u8)>(), 1..48),
        move_seeds in proptest::collection::vec(any::<(u8, u8, u8, u8)>(), 0..4),
    ) {
        let cfg = PimConfig::small().with_crossbars(32).with_rows(16);
        let mut ops: Vec<MicroOp> =
            seeds.iter().filter_map(|&s| arbitrary_op(&cfg, s)).collect();
        with_moves(&cfg, &mut ops, &move_seeds);
        prop_assume!(!ops.is_empty());
        let mut sim = PimSimulator::new(cfg.clone()).unwrap();
        let mut func = FuncBackend::new(cfg.clone()).unwrap();
        sim.set_strict(false);
        sim.execute_batch(&ops).unwrap();
        func.execute_batch(&ops).unwrap();
        assert_same_state(&sim, &func, &cfg);
        // Masks evolved identically: a follow-up write lands on the same
        // cells in both backends.
        sim.execute(&MicroOp::Write { index: 0, value: 0xA5A5_5A5A }).unwrap();
        func.execute(&MicroOp::Write { index: 0, value: 0xA5A5_5A5A }).unwrap();
        assert_same_state(&sim, &func, &cfg);
    }

    /// Satellite: modeled-cycle accounting on randomized routine-shaped
    /// mixes (init-gate-heavy streams like driver arithmetic emits, where
    /// most stores are eliminated) still matches the simulator's profiler
    /// exactly — elision must never change a charge.
    #[test]
    fn elided_batches_charge_identical_cycles(
        regs in proptest::collection::vec(0u8..8, 1..24),
        rounds in 1usize..6,
    ) {
        let cfg = PimConfig::small().with_crossbars(16).with_rows(32);
        let mut ops = Vec::new();
        for _ in 0..rounds {
            for &r in &regs {
                ops.push(MicroOp::LogicH(HLogic::init_reg(true, r, &cfg).unwrap()));
                ops.push(MicroOp::LogicH(
                    HLogic::parallel(GateKind::Nor, (r + 1) % 8, (r + 2) % 8, r, &cfg).unwrap(),
                ));
            }
        }
        let mut sim = PimSimulator::new(cfg.clone()).unwrap();
        let mut func = FuncBackend::new(cfg.clone()).unwrap();
        sim.execute_batch(&ops).unwrap();
        func.execute_batch(&ops).unwrap();
        assert_same_state(&sim, &func, &cfg);
    }
}

#[test]
fn dead_store_elimination_preserves_final_state() {
    // 256 redundant init+nor rounds into one register: only the last
    // round's effect is observable, and cycles still count all 512 ops.
    let cfg = PimConfig::small();
    let mut ops = Vec::new();
    for _ in 0..256 {
        ops.push(MicroOp::LogicH(HLogic::init_reg(true, 2, &cfg).unwrap()));
        ops.push(MicroOp::LogicH(
            HLogic::parallel(GateKind::Nor, 0, 1, 2, &cfg).unwrap(),
        ));
    }
    let mut sim = PimSimulator::new(cfg.clone()).unwrap();
    let mut func = FuncBackend::new(cfg.clone()).unwrap();
    sim.execute_batch(&ops).unwrap();
    func.execute_batch(&ops).unwrap();
    assert_same_state(&sim, &func, &cfg);
    assert_eq!(func.profiler().cycles, 512);
    // Registers 0 and 1 are zero, so NOR leaves all ones.
    assert_eq!(func.peek(0, 0, 2), u32::MAX);
}

#[test]
fn partial_masks_block_elision() {
    // A full-memory init after a narrow write must NOT elide the write:
    // the init is full (kills it), but reversed — the narrow write comes
    // *after* the init here, so both must execute.
    let cfg = PimConfig::small();
    let ops = vec![
        MicroOp::LogicH(HLogic::init_reg(false, 3, &cfg).unwrap()),
        MicroOp::XbMask(RangeMask::single(1)),
        MicroOp::RowMask(RangeMask::single(5)),
        MicroOp::Write {
            index: 3,
            value: 0xDEAD_BEEF,
        },
    ];
    let mut sim = PimSimulator::new(cfg.clone()).unwrap();
    let mut func = FuncBackend::new(cfg.clone()).unwrap();
    sim.execute_batch(&ops).unwrap();
    func.execute_batch(&ops).unwrap();
    assert_same_state(&sim, &func, &cfg);
    assert_eq!(func.peek(1, 5, 3), 0xDEAD_BEEF);
    assert_eq!(func.peek(0, 5, 3), 0);
}

#[test]
fn failed_batch_rolls_back() {
    let cfg = PimConfig::small();
    let mut func = FuncBackend::new(cfg.clone()).unwrap();
    let cycles0 = func.profiler().cycles;
    let err = func
        .execute_batch(&[
            MicroOp::XbMask(RangeMask::single(2)),
            MicroOp::Write {
                index: 99,
                value: 0,
            },
        ])
        .unwrap_err();
    assert!(matches!(
        err,
        pim_arch::ArchError::AddressOutOfBounds { .. }
    ));
    assert_eq!(func.profiler().cycles, cycles0);
    // Masks still cover the whole memory.
    func.execute(&MicroOp::Write { index: 0, value: 7 })
        .unwrap();
    assert_eq!(func.peek(0, 0, 0), 7);
    assert_eq!(func.peek(15, 63, 0), 7);
}

#[test]
fn batch_rejects_reads_before_executing() {
    let cfg = PimConfig::small();
    let mut func = FuncBackend::new(cfg).unwrap();
    let err = func
        .execute_batch(&[
            MicroOp::Write {
                index: 0,
                value: 0xFFFF_FFFF,
            },
            MicroOp::Read { index: 0 },
        ])
        .unwrap_err();
    assert!(matches!(err, pim_arch::ArchError::Protocol { .. }));
    // Nothing from the batch ran.
    assert_eq!(func.peek(0, 0, 0), 0);
}

#[test]
fn read_requires_single_masks() {
    let cfg = PimConfig::small();
    let mut func = FuncBackend::new(cfg).unwrap();
    let err = func.execute(&MicroOp::Read { index: 0 }).unwrap_err();
    assert!(matches!(err, pim_arch::ArchError::Protocol { .. }));
}

#[test]
fn snapshot_restore_roundtrip() {
    let cfg = PimConfig::small();
    let mut func = FuncBackend::new(cfg.clone()).unwrap();
    func.execute(&MicroOp::Write {
        index: 4,
        value: 0x1234_5678,
    })
    .unwrap();
    let snap = func.snapshot();
    func.execute(&MicroOp::Write { index: 4, value: 0 })
        .unwrap();
    assert_eq!(func.peek(3, 9, 4), 0);
    func.restore(&snap);
    assert_eq!(func.peek(3, 9, 4), 0x1234_5678);
    assert_eq!(func.profiler().ops.write, 1);
}

#[test]
fn any_backend_selects_and_snapshots() {
    let cfg = PimConfig::small();
    let mut any = AnyBackend::new(BackendKind::Functional, cfg.clone()).unwrap();
    assert_eq!(any.kind(), BackendKind::Functional);
    assert_eq!(any.kind().name(), "func");
    any.execute(&MicroOp::Write {
        index: 1,
        value: 0xCAFE,
    })
    .unwrap();
    let snap = any.snapshot();
    any.poke(0, 0, 1, 0);
    any.restore(&snap);
    assert_eq!(any.peek(0, 0, 1), 0xCAFE);

    let sim = AnyBackend::new(BackendKind::BitAccurate, cfg).unwrap();
    assert_eq!(sim.kind(), BackendKind::BitAccurate);
    assert_eq!(BackendKind::default(), BackendKind::BitAccurate);
}

#[test]
#[should_panic(expected = "snapshot kind mismatch")]
fn mismatched_snapshot_kind_panics() {
    let cfg = PimConfig::small();
    let mut sim = AnyBackend::new(BackendKind::BitAccurate, cfg.clone()).unwrap();
    let func = AnyBackend::new(BackendKind::Functional, cfg).unwrap();
    sim.restore(&func.snapshot());
}

#[test]
fn odd_head_and_tail_row_segments_match() {
    // Row masks that start/stop on odd boundaries exercise the half-pair
    // segment lowering.
    let cfg = PimConfig::small();
    for (start, stop, step) in [
        (1, 9, 1),
        (1, 1, 1),
        (2, 2, 1),
        (1, 9, 2),
        (0, 8, 2),
        (3, 9, 3),
    ] {
        let mask = RangeMask::new(start, stop, step).unwrap();
        let ops = vec![
            MicroOp::RowMask(mask),
            MicroOp::Write {
                index: 2,
                value: 0x5A5A_A5A5,
            },
            MicroOp::LogicH(HLogic::init_reg(true, 1, &cfg).unwrap()),
        ];
        let mut sim = PimSimulator::new(cfg.clone()).unwrap();
        let mut func = FuncBackend::new(cfg.clone()).unwrap();
        for op in &ops {
            sim.execute(op).unwrap();
            func.execute(op).unwrap();
        }
        assert_same_state(&sim, &func, &cfg);
    }
}
