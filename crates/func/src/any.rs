use crate::{FuncBackend, FuncSnapshot};
use pim_arch::{ArchError, Backend, MicroOp, PimConfig};
use pim_sim::{PimSimulator, Profiler, SimSnapshot};

/// Selects which [`Backend`] implementation executes a chip's
/// micro-operation stream. Threaded through `ClusterOptions` (per shard)
/// and `Device` constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The bit-accurate simulator ([`PimSimulator`]): models the stateful
    /// logic cell-by-cell and enforces the strict discipline. The default.
    #[default]
    BitAccurate,
    /// The vectorized functional backend ([`FuncBackend`]): identical
    /// architectural results and modeled cycles, much faster, no strict
    /// discipline checking.
    Functional,
}

impl BackendKind {
    /// Short stable name used in benchmark rows and logs.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::BitAccurate => "sim",
            BackendKind::Functional => "func",
        }
    }
}

/// A concrete runtime-selected backend: one enum wrapping the two
/// implementations so drivers, shard workers and journals hold a single
/// type while the kind varies per chip.
#[derive(Debug)]
pub enum AnyBackend {
    /// Bit-accurate simulator.
    Sim(PimSimulator),
    /// Vectorized functional backend.
    Func(FuncBackend),
}

/// Snapshot of an [`AnyBackend`] — carries the kind so restores are
/// checked against the live backend.
#[derive(Debug, Clone)]
pub enum AnySnapshot {
    /// Snapshot of a bit-accurate simulator.
    Sim(SimSnapshot),
    /// Snapshot of a functional backend.
    Func(FuncSnapshot),
}

impl AnyBackend {
    /// Creates a backend of the requested kind.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if `cfg` fails validation.
    pub fn new(kind: BackendKind, cfg: PimConfig) -> Result<Self, ArchError> {
        Ok(match kind {
            BackendKind::BitAccurate => AnyBackend::Sim(PimSimulator::new(cfg)?),
            BackendKind::Functional => AnyBackend::Func(FuncBackend::new(cfg)?),
        })
    }

    /// Which implementation this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            AnyBackend::Sim(_) => BackendKind::BitAccurate,
            AnyBackend::Func(_) => BackendKind::Functional,
        }
    }

    /// The profiling counters accumulated so far.
    pub fn profiler(&self) -> &Profiler {
        match self {
            AnyBackend::Sim(s) => s.profiler(),
            AnyBackend::Func(f) => f.profiler(),
        }
    }

    /// Resets the profiling counters.
    pub fn reset_profiler(&mut self) {
        match self {
            AnyBackend::Sim(s) => s.reset_profiler(),
            AnyBackend::Func(f) => f.reset_profiler(),
        }
    }

    /// Enables or disables strict stateful-logic checking. Enforced only
    /// by the bit-accurate simulator; the functional backend stores the
    /// flag without checking.
    pub fn set_strict(&mut self, strict: bool) {
        match self {
            AnyBackend::Sim(s) => s.set_strict(strict),
            AnyBackend::Func(f) => f.set_strict(strict),
        }
    }

    /// The stored strict flag.
    pub fn strict(&self) -> bool {
        match self {
            AnyBackend::Sim(s) => s.strict(),
            AnyBackend::Func(f) => f.strict(),
        }
    }

    /// Overrides the worker-thread count used for batch execution (the
    /// functional backend stores it without fanning out).
    pub fn set_threads(&mut self, threads: usize) {
        match self {
            AnyBackend::Sim(s) => s.set_threads(threads),
            AnyBackend::Func(f) => f.set_threads(threads),
        }
    }

    /// The effective thread count.
    pub fn threads(&self) -> usize {
        match self {
            AnyBackend::Sim(s) => s.threads(),
            AnyBackend::Func(f) => f.threads(),
        }
    }

    /// Charges `cycles` modeled cycles without executing anything.
    pub fn stall(&mut self, cycles: u64) {
        match self {
            AnyBackend::Sim(s) => s.stall(cycles),
            AnyBackend::Func(f) => f.stall(cycles),
        }
    }

    /// Direct state inspection for tests: the word at `(xb, row, reg)`.
    pub fn peek(&self, xb: usize, row: usize, reg: usize) -> u32 {
        match self {
            AnyBackend::Sim(s) => s.peek(xb, row, reg),
            AnyBackend::Func(f) => f.peek(xb, row, reg),
        }
    }

    /// Direct state mutation for tests; see [`peek`](AnyBackend::peek).
    pub fn poke(&mut self, xb: usize, row: usize, reg: usize, value: u32) {
        match self {
            AnyBackend::Sim(s) => s.poke(xb, row, reg, value),
            AnyBackend::Func(f) => f.poke(xb, row, reg, value),
        }
    }

    /// Captures the complete architectural state.
    pub fn snapshot(&self) -> AnySnapshot {
        match self {
            AnyBackend::Sim(s) => AnySnapshot::Sim(s.snapshot()),
            AnyBackend::Func(f) => AnySnapshot::Func(f.snapshot()),
        }
    }

    /// Restores a snapshot taken from a backend of the same kind and
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot kind does not match the live backend — a
    /// logic error in checkpoint bookkeeping, never a data-dependent
    /// condition.
    pub fn restore(&mut self, snap: &AnySnapshot) {
        match (self, snap) {
            (AnyBackend::Sim(s), AnySnapshot::Sim(snap)) => s.restore(snap),
            (AnyBackend::Func(f), AnySnapshot::Func(snap)) => f.restore(snap),
            (live, snap) => panic!(
                "snapshot kind mismatch: live backend is {:?} but snapshot is {}",
                live.kind(),
                match snap {
                    AnySnapshot::Sim(_) => "sim",
                    AnySnapshot::Func(_) => "func",
                }
            ),
        }
    }
}

impl Backend for AnyBackend {
    fn config(&self) -> &PimConfig {
        match self {
            AnyBackend::Sim(s) => s.config(),
            AnyBackend::Func(f) => f.config(),
        }
    }

    fn execute(&mut self, op: &MicroOp) -> Result<Option<u32>, ArchError> {
        match self {
            AnyBackend::Sim(s) => s.execute(op),
            AnyBackend::Func(f) => f.execute(op),
        }
    }

    fn execute_batch(&mut self, ops: &[MicroOp]) -> Result<(), ArchError> {
        match self {
            AnyBackend::Sim(s) => s.execute_batch(ops),
            AnyBackend::Func(f) => f.execute_batch(ops),
        }
    }

    fn stream(&mut self, words: &[u64]) -> Result<(), ArchError> {
        match self {
            AnyBackend::Sim(s) => s.stream(words),
            AnyBackend::Func(f) => f.stream(words),
        }
    }
}
