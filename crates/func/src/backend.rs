use pim_arch::{
    ArchError, Backend, GateKind, HLogic, MicroOp, MoveOp, PimConfig, RangeMask, VGate,
};
use pim_sim::{charge_op, Profiler};

/// Lane mask selecting the even row (low 32 bits) of a packed word.
const LOW: u64 = 0x0000_0000_FFFF_FFFF;
/// Lane mask selecting the odd row (high 32 bits) of a packed word.
const HIGH: u64 = 0xFFFF_FFFF_0000_0000;

/// Shifts gate bits from input partitions to output partitions in both
/// packed rows at once: positive `s` moves bit `p` to bit `p + s` within
/// each 32-bit lane. Bits that cross the lane boundary are annihilated by
/// the caller's lane-replicated `out_bits` mask: for every output bit `q`
/// the source partition `q - s` is in `[0, 32)` (enforced by
/// [`HLogic::validate`]), so a bit shifted in from the *other* lane can
/// never land on a masked output position.
#[inline]
fn part_shift64(x: u64, s: i32) -> u64 {
    if s >= 0 {
        x << s
    } else {
        x >> (-s)
    }
}

/// One contiguous run of packed words plus the lane mask to apply there.
type Span = (std::ops::Range<usize>, u64);

/// Lowers a row mask into contiguous row-pair segments with constant lane
/// masks. Dense masks produce at most three segments (odd head half-pair,
/// full middle, even tail half-pair); step-2 masks produce one single-lane
/// segment; other strides fall back to one segment per row.
fn row_segments(mask: &RangeMask) -> Vec<Span> {
    let (start, stop) = (mask.start() as usize, mask.stop() as usize);
    let mut segs = Vec::new();
    match mask.step() {
        1 => {
            let mut lo = start;
            if lo & 1 == 1 {
                segs.push((lo >> 1..(lo >> 1) + 1, HIGH));
                lo += 1;
                if lo > stop {
                    return segs;
                }
            }
            if stop & 1 == 1 {
                segs.push((lo >> 1..(stop >> 1) + 1, u64::MAX));
            } else {
                if lo < stop {
                    segs.push((lo >> 1..stop >> 1, u64::MAX));
                }
                segs.push((stop >> 1..(stop >> 1) + 1, LOW));
            }
        }
        2 => {
            let lane = if start & 1 == 0 { LOW } else { HIGH };
            segs.push((start >> 1..(stop >> 1) + 1, lane));
        }
        _ => {
            for row in mask.iter() {
                let row = row as usize;
                let lane = if row & 1 == 0 { LOW } else { HIGH };
                segs.push((row >> 1..(row >> 1) + 1, lane));
            }
        }
    }
    segs
}

/// Expands row segments across the crossbar mask into flat word spans
/// within one register block. A dense crossbar mask whose row segment
/// covers every row pair collapses into a *single* span over all selected
/// crossbars — the whole-memory fast path.
fn flat_spans(xb_mask: &RangeMask, segs: &[Span], rph: usize) -> Vec<Span> {
    if let (Some(xr), [(seg, lane)]) = (xb_mask.as_dense_range(), segs) {
        if seg.start == 0 && seg.end == rph {
            return vec![(xr.start * rph..xr.end * rph, *lane)];
        }
    }
    let mut spans = Vec::with_capacity(xb_mask.len() * segs.len());
    for xb in xb_mask.iter() {
        let base = xb as usize * rph;
        for (seg, lane) in segs {
            spans.push((base + seg.start..base + seg.end, *lane));
        }
    }
    spans
}

/// The vectorized functional backend: architecturally equivalent to
/// [`pim_sim::PimSimulator`] (bit-identical reads, identical profiler
/// totals via the shared cost model [`pim_sim::charge_op`]) but executed
/// as plain word-level host code. See the crate docs for the design and
/// `README.md` for what "functional" does and does not guarantee.
#[derive(Debug)]
pub struct FuncBackend {
    cfg: PimConfig,
    /// Crossbar count (hoisted from `cfg` for indexing).
    xbs: usize,
    /// Row pairs per crossbar: `cfg.rows.div_ceil(2)`.
    rph: usize,
    /// Packed cell state: `words[(reg * xbs + xb) * rph + pair]`, low
    /// 32 bits = row `2·pair`, high 32 bits = row `2·pair + 1`.
    words: Vec<u64>,
    xb_mask: RangeMask,
    row_mask: RangeMask,
    strict: bool,
    profiler: Profiler,
    threads: usize,
}

/// A point-in-time copy of a functional backend's architectural state —
/// the per-backend analog of [`pim_sim::SimSnapshot`], used by
/// `pim-cluster` as a shard checkpoint.
#[derive(Debug, Clone)]
pub struct FuncSnapshot {
    words: Vec<u64>,
    xb_mask: RangeMask,
    row_mask: RangeMask,
    strict: bool,
    profiler: Profiler,
}

impl FuncBackend {
    /// Creates a functional backend with all cells at logical 0 and both
    /// masks covering the whole memory. Mirrors
    /// [`pim_sim::PimSimulator::new`]; the strict flag defaults to on for
    /// interface parity even though no strict check executes here.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if `cfg` fails validation.
    pub fn new(cfg: PimConfig) -> Result<Self, ArchError> {
        cfg.validate()?;
        let xbs = cfg.crossbars;
        let rph = cfg.rows.div_ceil(2);
        Ok(FuncBackend {
            xb_mask: RangeMask::dense(0, cfg.crossbars as u32).expect("validated nonzero"),
            row_mask: RangeMask::dense(0, cfg.rows as u32).expect("validated nonzero"),
            words: vec![0; cfg.regs * xbs * rph],
            xbs,
            rph,
            cfg,
            strict: true,
            profiler: Profiler::new(),
            threads: 1,
        })
    }

    /// Stores the strict flag for interface parity with the simulator.
    /// The functional backend performs **no** stateful-logic discipline
    /// checking; validate routines against the bit-accurate simulator.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// The stored strict flag (not enforced; see [`set_strict`]).
    ///
    /// [`set_strict`]: FuncBackend::set_strict
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Stores a worker-thread preference for interface parity. Execution
    /// is always single-threaded — the word-level kernels saturate memory
    /// bandwidth without fan-out. Values clamp to at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The stored thread count (execution is single-threaded regardless).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The profiling counters accumulated so far.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Resets the profiling counters.
    pub fn reset_profiler(&mut self) {
        self.profiler.reset();
    }

    /// Charges `cycles` modeled cycles without executing anything (fault
    /// injection models a stalled shard this way).
    pub fn stall(&mut self, cycles: u64) {
        self.profiler.cycles += cycles;
    }

    /// Direct state inspection for tests and debugging: the word at
    /// `(crossbar, row, reg)`. Bypasses the micro-operation interface.
    pub fn peek(&self, xb: usize, row: usize, reg: usize) -> u32 {
        (self.words[self.widx(reg, xb, row >> 1)] >> ((row & 1) * 32)) as u32
    }

    /// Direct state mutation for tests and debugging; see [`peek`].
    ///
    /// [`peek`]: FuncBackend::peek
    pub fn poke(&mut self, xb: usize, row: usize, reg: usize, value: u32) {
        let i = self.widx(reg, xb, row >> 1);
        let shift = (row & 1) * 32;
        let lane = 0xFFFF_FFFFu64 << shift;
        self.words[i] = (self.words[i] & !lane) | ((value as u64) << shift);
    }

    /// Captures the complete architectural state as a [`FuncSnapshot`].
    /// The thread preference is host policy and is not captured.
    pub fn snapshot(&self) -> FuncSnapshot {
        FuncSnapshot {
            words: self.words.clone(),
            xb_mask: self.xb_mask,
            row_mask: self.row_mask,
            strict: self.strict,
            profiler: self.profiler.clone(),
        }
    }

    /// Restores the state captured by [`snapshot`](FuncBackend::snapshot).
    /// The snapshot must come from a backend with the same geometry.
    pub fn restore(&mut self, snap: &FuncSnapshot) {
        debug_assert_eq!(
            snap.words.len(),
            self.words.len(),
            "snapshot geometry mismatch"
        );
        self.words.clone_from(&snap.words);
        self.xb_mask = snap.xb_mask;
        self.row_mask = snap.row_mask;
        self.strict = snap.strict;
        self.profiler = snap.profiler.clone();
    }

    #[inline]
    fn widx(&self, reg: usize, xb: usize, pair: usize) -> usize {
        (reg * self.xbs + xb) * self.rph + pair
    }

    /// The contiguous packed block of one register (all crossbars).
    #[inline]
    fn block_mut(&mut self, reg: usize) -> &mut [u64] {
        let block = self.xbs * self.rph;
        &mut self.words[reg * block..(reg + 1) * block]
    }

    /// The mutable output block plus the shared input blocks for a fused
    /// gate kernel. An input equal to `out` comes back as `None` — the
    /// kernel then reads the output word itself, which is exactly the
    /// pre-gate value because each word is read before it is written
    /// (same aliasing contract as the bit-accurate crossbar kernels).
    #[allow(clippy::type_complexity)]
    fn out_and_inputs(
        &mut self,
        out: usize,
        a: usize,
        b: usize,
    ) -> (&mut [u64], Option<&[u64]>, Option<&[u64]>) {
        let block = self.xbs * self.rph;
        let mut dst: Option<&mut [u64]> = None;
        let mut col_a: Option<&[u64]> = None;
        let mut col_b: Option<&[u64]> = None;
        for (i, chunk) in self.words.chunks_exact_mut(block).enumerate() {
            if i == out {
                dst = Some(chunk);
            } else if i == a || i == b {
                let shared: &[u64] = chunk;
                if i == a {
                    col_a = Some(shared);
                }
                if i == b {
                    col_b = Some(shared);
                }
            }
        }
        let dst = dst.expect("output register validated in bounds");
        (
            dst,
            if a == out { None } else { col_a },
            if b == out { None } else { col_b },
        )
    }

    /// Applies a horizontal stateful-logic operation under the stored
    /// masks — the word-level gate evaluation over packed row pairs.
    fn apply_hlogic(&mut self, op: &HLogic) {
        let bits = op.out_bits() as u64;
        let bits64 = bits << 32 | bits;
        let (sa, sb) = (op.shift_a(), op.shift_b());
        let out = op.out.offset as usize;
        let a = op.in_a.offset as usize;
        let b = op.in_b.offset as usize;
        let spans = flat_spans(&self.xb_mask, &row_segments(&self.row_mask), self.rph);
        match op.gate {
            GateKind::Init0 => {
                let dst = self.block_mut(out);
                for (r, lane) in &spans {
                    let m = bits64 & lane;
                    for w in &mut dst[r.clone()] {
                        *w &= !m;
                    }
                }
            }
            GateKind::Init1 => {
                let dst = self.block_mut(out);
                for (r, lane) in &spans {
                    let m = bits64 & lane;
                    for w in &mut dst[r.clone()] {
                        *w |= m;
                    }
                }
            }
            GateKind::Not => {
                let (dst, col_a, _) = self.out_and_inputs(out, a, a);
                for (r, lane) in &spans {
                    let m = bits64 & lane;
                    match col_a {
                        Some(av) => {
                            for (d, &x) in dst[r.clone()].iter_mut().zip(&av[r.clone()]) {
                                *d &= !(part_shift64(x, sa) & m);
                            }
                        }
                        None => {
                            for d in dst[r.clone()].iter_mut() {
                                *d &= !(part_shift64(*d, sa) & m);
                            }
                        }
                    }
                }
            }
            GateKind::Nor => {
                let (dst, col_a, col_b) = self.out_and_inputs(out, a, b);
                for (r, lane) in &spans {
                    let m = bits64 & lane;
                    match (col_a, col_b) {
                        (Some(av), Some(bv)) => {
                            let (av, bv) = (&av[r.clone()], &bv[r.clone()]);
                            for ((d, &x), &y) in dst[r.clone()].iter_mut().zip(av).zip(bv) {
                                *d &= !((part_shift64(x, sa) | part_shift64(y, sb)) & m);
                            }
                        }
                        (None, Some(bv)) => {
                            for (d, &y) in dst[r.clone()].iter_mut().zip(&bv[r.clone()]) {
                                *d &= !((part_shift64(*d, sa) | part_shift64(y, sb)) & m);
                            }
                        }
                        (Some(av), None) => {
                            for (d, &x) in dst[r.clone()].iter_mut().zip(&av[r.clone()]) {
                                *d &= !((part_shift64(x, sa) | part_shift64(*d, sb)) & m);
                            }
                        }
                        (None, None) => {
                            for d in dst[r.clone()].iter_mut() {
                                *d &= !((part_shift64(*d, sa) | part_shift64(*d, sb)) & m);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Writes `value` to one register of every masked row of every masked
    /// crossbar (memory write semantics).
    fn apply_write(&mut self, reg: usize, value: u32) {
        let packed = (value as u64) << 32 | value as u64;
        let spans = flat_spans(&self.xb_mask, &row_segments(&self.row_mask), self.rph);
        let dst = self.block_mut(reg);
        for (r, lane) in &spans {
            if *lane == u64::MAX {
                dst[r.clone()].fill(packed);
            } else {
                for w in &mut dst[r.clone()] {
                    *w = (*w & !lane) | (packed & lane);
                }
            }
        }
    }

    /// Applies a vertical gate between two rows of every masked crossbar.
    /// No strict check runs (see [`set_strict`](FuncBackend::set_strict)).
    fn apply_vlogic(&mut self, gate: VGate, row_in: usize, row_out: usize, reg: usize) {
        let mask = self.xb_mask;
        for xb in mask.iter() {
            let xb = xb as usize;
            match gate {
                VGate::Init0 => self.poke(xb, row_out, reg, 0),
                VGate::Init1 => self.poke(xb, row_out, reg, u32::MAX),
                VGate::Not => {
                    let src = self.peek(xb, row_in, reg);
                    let dst = self.peek(xb, row_out, reg);
                    self.poke(xb, row_out, reg, dst & !src);
                }
            }
        }
    }

    /// Distributed move: gather all source words, then scatter — sources
    /// and destinations are disjoint (H-tree rules), and the two-phase
    /// form matches the simulator exactly.
    fn apply_move(&mut self, mv: &MoveOp) {
        let transfers: Vec<(usize, u32)> = self
            .xb_mask
            .iter()
            .map(|src| {
                let value = self.peek(src as usize, mv.row_src as usize, mv.index_src as usize);
                ((src as i64 + mv.dist as i64) as usize, value)
            })
            .collect();
        for (dst, value) in transfers {
            self.poke(dst, mv.row_dst as usize, mv.index_dst as usize, value);
        }
    }

    fn read_word(&self, index: u8) -> Result<u32, ArchError> {
        if !self.xb_mask.is_single() || !self.row_mask.is_single() {
            return Err(ArchError::Protocol {
                reason: format!(
                    "read requires masks selecting a single row of a single crossbar \
                     (crossbar mask selects {}, row mask selects {})",
                    self.xb_mask.len(),
                    self.row_mask.len()
                ),
            });
        }
        Ok(self.peek(
            self.xb_mask.start() as usize,
            self.row_mask.start() as usize,
            index as usize,
        ))
    }

    /// Applies one validated, charged, non-read operation. Infallible:
    /// bounds were validated and moves were planned during accounting, and
    /// no strict discipline check runs here.
    fn apply(&mut self, op: &MicroOp) {
        match op {
            MicroOp::XbMask(m) => self.xb_mask = *m,
            MicroOp::RowMask(m) => self.row_mask = *m,
            MicroOp::Write { index, value } => self.apply_write(*index as usize, *value),
            MicroOp::LogicH(l) => self.apply_hlogic(l),
            MicroOp::LogicV {
                gate,
                row_in,
                row_out,
                index,
            } => self.apply_vlogic(*gate, *row_in as usize, *row_out as usize, *index as usize),
            MicroOp::Move(mv) => self.apply_move(mv),
            MicroOp::Read { .. } => unreachable!("reads are handled by the dispatcher"),
        }
    }

    /// Whether the stored masks select the entire memory (every crossbar,
    /// every row) — the condition under which a whole-register store fully
    /// defines the register for dead-store elimination.
    fn masks_full(&self) -> bool {
        let full =
            |m: &RangeMask, n: usize| m.start() == 0 && m.step() == 1 && m.stop() as usize == n - 1;
        full(&self.xb_mask, self.cfg.crossbars) && full(&self.row_mask, self.cfg.rows)
    }
}

/// The backward dead-store walk over a validated batch. `full[i]` tells
/// whether op `i` ran under whole-memory masks. An operation is elided
/// when its only effect is a store to a register that is completely
/// overwritten later in the batch before any read; accounting already
/// covered the full stream, so elision changes no modeled cycle.
fn plan_elisions(ops: &[MicroOp], full: &[bool], regs: usize) -> Vec<bool> {
    let mut elide = vec![false; ops.len()];
    // dead[r]: every bit of register r (all crossbars/rows) is overwritten
    // later in the batch before any operation reads it.
    let mut dead = vec![false; regs];
    for i in (0..ops.len()).rev() {
        match &ops[i] {
            MicroOp::XbMask(_) | MicroOp::RowMask(_) => {}
            MicroOp::Write { index, .. } => {
                let r = *index as usize;
                if dead[r] {
                    elide[i] = true;
                } else if full[i] {
                    dead[r] = true;
                }
            }
            MicroOp::LogicH(l) => {
                let out = l.out.offset as usize;
                if dead[out] {
                    elide[i] = true;
                    continue;
                }
                match l.gate {
                    GateKind::Init0 | GateKind::Init1 => {
                        if full[i] && l.out_bits() == u32::MAX {
                            dead[out] = true;
                        }
                    }
                    GateKind::Not => dead[l.in_a.offset as usize] = false,
                    GateKind::Nor => {
                        dead[l.in_a.offset as usize] = false;
                        dead[l.in_b.offset as usize] = false;
                    }
                }
            }
            MicroOp::LogicV { index, .. } => {
                // Writes one row (and NOT reads the same register); a
                // single-row store never fully defines the register.
                if dead[*index as usize] {
                    elide[i] = true;
                }
            }
            MicroOp::Move(mv) => {
                // Reads the source register; writes one row of the
                // destination register (partial — does not define it).
                dead[mv.index_src as usize] = false;
                dead[mv.index_dst as usize] = false;
            }
            MicroOp::Read { .. } => unreachable!("reads rejected before execution"),
        }
    }
    elide
}

impl Backend for FuncBackend {
    fn config(&self) -> &PimConfig {
        &self.cfg
    }

    fn execute(&mut self, op: &MicroOp) -> Result<Option<u32>, ArchError> {
        op.validate(&self.cfg)?;
        charge_op(
            &mut self.profiler,
            op,
            &self.xb_mask,
            &self.row_mask,
            &self.cfg,
        )?;
        if let MicroOp::Read { index } = op {
            return self.read_word(*index).map(Some);
        }
        self.apply(op);
        Ok(None)
    }

    fn execute_batch(&mut self, ops: &[MicroOp]) -> Result<(), ArchError> {
        // Validate and charge the full stream first, tracking the evolving
        // mask state and recording whether each op saw whole-memory masks.
        // On any rejection the masks and profiler roll back, so a failed
        // batch leaves the backend exactly as it was.
        let (xb_mask0, row_mask0) = (self.xb_mask, self.row_mask);
        let profiler0 = self.profiler.clone();
        let mut full = Vec::with_capacity(ops.len());
        let mut failed = None;
        for op in ops {
            if matches!(op, MicroOp::Read { .. }) {
                failed = Some(ArchError::Protocol {
                    reason: "read operations cannot be batched".into(),
                });
                break;
            }
            if let Err(e) = op.validate(&self.cfg) {
                failed = Some(e);
                break;
            }
            full.push(self.masks_full());
            if let Err(e) = charge_op(
                &mut self.profiler,
                op,
                &self.xb_mask,
                &self.row_mask,
                &self.cfg,
            ) {
                failed = Some(e);
                break;
            }
            match op {
                MicroOp::XbMask(m) => self.xb_mask = *m,
                MicroOp::RowMask(m) => self.row_mask = *m,
                _ => {}
            }
        }
        self.xb_mask = xb_mask0;
        self.row_mask = row_mask0;
        if let Some(e) = failed {
            self.profiler = profiler0;
            return Err(e);
        }

        // Execute with dead stores elided. Mask updates always replay so
        // the final mask state matches op-by-op execution.
        let elide = plan_elisions(ops, &full, self.cfg.regs);
        for (op, &skip) in ops.iter().zip(&elide) {
            match op {
                MicroOp::XbMask(m) => self.xb_mask = *m,
                MicroOp::RowMask(m) => self.row_mask = *m,
                _ if !skip => self.apply(op),
                _ => {}
            }
        }
        Ok(())
    }
}
