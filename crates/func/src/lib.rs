//! # pim-func
//!
//! A *functional* backend for the PyPIM micro-operation interface
//! ([`pim_arch::Backend`]): it produces the same architectural state and
//! the same modeled-cycle totals as the bit-accurate simulator
//! ([`pim_sim::PimSimulator`]), but computes them with plain vectorized
//! host code instead of simulating the stateful-logic discipline.
//!
//! Three things make it fast:
//!
//! * **Row-pair packing** — cell state lives in one flat `Vec<u64>` where
//!   each word packs *two* adjacent rows of one register of one crossbar
//!   (low 32 bits = even row, high 32 bits = odd row). Whole-memory
//!   horizontal gates become straight-line loops over contiguous `u64`
//!   slices spanning *all* crossbars at once; the shift-mask-andnot gate
//!   evaluation is applied to both packed rows per word operation.
//! * **Segmented masks** — a row mask is lowered once per operation into
//!   at most three contiguous word-range segments with a constant lane
//!   mask (dense masks → head half-pair, full middle, tail half-pair;
//!   step-2 masks → one segment selecting a single 32-bit lane), so the
//!   inner loops stay branch-free.
//! * **Batch dead-store elimination** — [`Backend::execute_batch`] charges
//!   every operation through the shared cost model first, then walks the
//!   batch backward and skips stores whose output register is completely
//!   overwritten later in the same batch before any read. Driver-generated
//!   routines re-initialize their scratch registers before every gate, so
//!   on arithmetic-heavy batches this removes most of the physical work
//!   while the modeled cycles stay exactly those of the full stream.
//!
//! What the functional backend does **not** do: enforce the stateful-logic
//! strict discipline (output cells of `NOT`/`NOR` holding 1 when the gate
//! fires). The strict flag is carried (and snapshotted) for interface
//! compatibility, but no check runs — validate driver routines against
//! [`pim_sim::PimSimulator`] in strict mode, then serve with `pim-func`.
//! See `crates/func/README.md` for the full guarantee table.
//!
//! [`AnyBackend`] packages the two implementations behind one concrete
//! type so that drivers, shard workers and snapshots can select a backend
//! per chip at runtime ([`BackendKind`]).
//!
//! # Example
//!
//! ```
//! use pim_arch::{Backend, GateKind, HLogic, MicroOp, PimConfig, RangeMask};
//! use pim_func::FuncBackend;
//!
//! let cfg = PimConfig::small();
//! let mut f = FuncBackend::new(cfg.clone())?;
//! f.execute(&MicroOp::XbMask(RangeMask::single(0)))?;
//! f.execute(&MicroOp::RowMask(RangeMask::single(3)))?;
//! f.execute(&MicroOp::Write { index: 1, value: 0xFFFF_FFFF })?;
//! f.execute(&MicroOp::LogicH(HLogic::init_reg(true, 2, &cfg)?))?;
//! f.execute(&MicroOp::LogicH(HLogic::parallel(GateKind::Not, 1, 1, 2, &cfg)?))?;
//! assert_eq!(f.execute(&MicroOp::Read { index: 2 })?, Some(0));
//! # Ok::<(), pim_arch::ArchError>(())
//! ```

mod any;
mod backend;

pub use any::{AnyBackend, AnySnapshot, BackendKind};
pub use backend::{FuncBackend, FuncSnapshot};
