//! Fault injection and recovery, end to end: a seeded fault schedule
//! against the sharded cluster must never hang and never silently corrupt
//! — every request either completes bit-identical to a fault-free run or
//! resolves to a typed error — and the supervisor's checkpoint+replay
//! respawn restores shard state so post-crash work is bit-identical.

use futures::executor::{block_on, block_on_timeout};
use proptest::prelude::*;
use pypim::cluster::{ClusterError, PimCluster};
use pypim::isa::{DType, Instruction, RegOp, ThreadRange};
use pypim::serve::ClusterClient;
use pypim::{
    ClusterOptions, Device, DeviceServeExt, ErrorClass, FaultInjector, FaultPlan, FaultProfile,
    PimConfig, RecoveryConfig, Result, ServeConfig,
};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 2;

fn cfg() -> PimConfig {
    PimConfig::small().with_crossbars(4)
}

fn faulty_device(plan: FaultPlan, recovery: RecoveryConfig) -> (Device, Arc<FaultInjector>) {
    let injector = Arc::new(FaultInjector::new(plan, SHARDS));
    let dev = Device::cluster_with_options(
        cfg(),
        SHARDS,
        ClusterOptions {
            recovery,
            fault: Some(Arc::clone(&injector)),
            ..ClusterOptions::default()
        },
    )
    .unwrap();
    (dev, injector)
}

/// The serving request used throughout: `sum(x * 2 + x)`, one read at the
/// very end (reads bypass the gateway's retry machinery, so the fault
/// schedules below target the execution phase).
async fn request(client: &ClusterClient, n: usize, seed: f32) -> Result<f32> {
    let data: Vec<f32> = (0..n).map(|i| seed + i as f32 * 0.25).collect();
    let x = client.upload_f32(&data).await?;
    let y = client.full_f32(n, 2.0).await?;
    let xy = client.mul(&x, &y).await?;
    let z = client.add(&xy, &x).await?;
    client.sum_f32(&z).await
}

/// Fault-free reference bits for `request(n, seed)`.
fn reference_bits(n: usize, seed: f32) -> u32 {
    let dev = Device::cluster(cfg(), SHARDS).unwrap();
    let gw = dev.serve(ServeConfig::default());
    let client = gw.session_with_warps(4).unwrap();
    block_on(request(&client, n, seed)).unwrap().to_bits()
}

// ---------------------------------------------------------------------
// Zero-cost / bit-identical when no fault is scheduled
// ---------------------------------------------------------------------

#[test]
fn empty_injector_and_recovery_are_bit_identical_to_plain_cluster() {
    let program = |dev: &Device| -> (Vec<u32>, String) {
        let x = dev
            .from_slice_f32(&[1.5, -2.25, 3.0, 0.125, 9.5, -7.75, 0.0, 4.5])
            .unwrap();
        let y = dev.full_f32(8, 3.5).unwrap();
        let z = (&(&x * &y).unwrap() + &x).unwrap();
        let bits: Vec<u32> = z
            .to_vec_f32()
            .unwrap()
            .into_iter()
            .map(f32::to_bits)
            .collect();
        let mut bits = bits;
        bits.push(z.sum_f32().unwrap().to_bits());
        // Per-shard profiler and issued-cycle counters: the modeled work,
        // not just the values, must be unchanged by the idle machinery.
        (
            bits,
            format!("{:?}", dev.cluster_stats().unwrap().unwrap().shards),
        )
    };

    let plain = program(&Device::cluster(cfg(), SHARDS).unwrap());
    let (dev, injector) = faulty_device(FaultPlan::none(), RecoveryConfig::default());
    let armed = program(&dev);

    assert_eq!(plain.0, armed.0, "values diverged with an empty injector");
    assert_eq!(
        plain.1, armed.1,
        "modeled work diverged with an empty injector"
    );
    assert_eq!(injector.stats().injected(), 0);
    assert_eq!(dev.cluster_stats().unwrap().unwrap().worker_restarts, 0);
}

// ---------------------------------------------------------------------
// Supervision: typed error, respawn, checkpoint+replay
// ---------------------------------------------------------------------

/// Runs the cluster-level crash/recover scenario under `recovery`:
/// batch 1 commits, batch 2 dies with a typed transient error, the retry
/// lands on the respawned worker, and the final reads are bit-identical
/// to a fault-free run.
fn crash_recover_scenario(recovery: RecoveryConfig) {
    let all = |c: &PimCluster| ThreadRange::all(c.logical_config());
    let batch1 = |all: ThreadRange| {
        vec![
            Instruction::Write {
                reg: 0,
                value: 30,
                target: all,
            },
            Instruction::Write {
                reg: 1,
                value: 12,
                target: all,
            },
        ]
    };
    let batch2 = |all: ThreadRange| {
        vec![Instruction::RType {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst: 2,
            srcs: [0, 1, 0],
            target: all,
        }]
    };

    // Fault-free reference.
    let clean = PimCluster::new(cfg(), SHARDS).unwrap();
    let r = all(&clean);
    clean.execute_batch(&batch1(r)).unwrap();
    clean.execute_batch(&batch2(r)).unwrap();
    let expected: Vec<Option<u32>> = (0..8)
        .map(|w| {
            clean
                .execute(&Instruction::Read {
                    reg: 2,
                    warp: w,
                    row: 3,
                })
                .unwrap()
        })
        .collect();

    // Shard 0's second executable job (the RType batch) crashes its worker.
    let injector = Arc::new(FaultInjector::new(FaultPlan::none().crash_at(0, 1), SHARDS));
    let cluster = PimCluster::with_options(
        cfg(),
        SHARDS,
        ClusterOptions {
            recovery,
            fault: Some(Arc::clone(&injector)),
            ..ClusterOptions::default()
        },
    )
    .unwrap();
    let r = all(&cluster);
    cluster.execute_batch(&batch1(r)).unwrap();

    let err = cluster.execute_batch(&batch2(r)).unwrap_err();
    assert!(
        matches!(err, ClusterError::WorkerCrashed { shard: 0 }),
        "expected typed crash error, got {err:?}"
    );
    assert_eq!(err.class(), ErrorClass::Transient);

    // Retry: the send path respawns the worker from checkpoint+journal,
    // so batch 1's writes are intact and the retried batch completes.
    cluster.execute_batch(&batch2(r)).unwrap();
    let got: Vec<Option<u32>> = (0..8)
        .map(|w| {
            cluster
                .execute(&Instruction::Read {
                    reg: 2,
                    warp: w,
                    row: 3,
                })
                .unwrap()
        })
        .collect();
    assert_eq!(got, expected, "post-recovery state diverged");
    assert_eq!(injector.stats().worker_crashes, 1);
    assert_eq!(cluster.stats().unwrap().worker_restarts, 1);
}

#[test]
fn crash_recovers_bit_identically_from_default_checkpoints() {
    crash_recover_scenario(RecoveryConfig::default());
}

#[test]
fn crash_recovers_bit_identically_under_tight_checkpoint_bounds() {
    // A tiny instruction bound forces a checkpoint between the batches,
    // exercising snapshot-restore rather than pure journal replay.
    crash_recover_scenario(RecoveryConfig {
        checkpoint_max_instructions: 1,
        ..RecoveryConfig::default()
    });
    // A huge bound forces the opposite: pure replay from the initial
    // snapshot.
    crash_recover_scenario(RecoveryConfig {
        checkpoint_max_instructions: usize::MAX,
        checkpoint_interval_cycles: u64::MAX,
        ..RecoveryConfig::default()
    });
}

#[test]
fn recovery_disabled_turns_crashes_into_permanent_disconnects() {
    let injector = Arc::new(FaultInjector::new(FaultPlan::none().crash_at(0, 0), SHARDS));
    let cluster = PimCluster::with_options(
        cfg(),
        SHARDS,
        ClusterOptions {
            recovery: RecoveryConfig {
                enabled: false,
                ..RecoveryConfig::default()
            },
            fault: Some(injector),
            ..ClusterOptions::default()
        },
    )
    .unwrap();
    let r = ThreadRange::all(cluster.logical_config());
    let batch = vec![Instruction::Write {
        reg: 0,
        value: 7,
        target: r,
    }];
    assert!(cluster.execute_batch(&batch).is_err());
    // Without a journal there is nothing to respawn from: the shard stays
    // down, but errors remain typed — no panics, no hangs.
    let err = cluster.execute_batch(&batch).unwrap_err();
    assert!(
        matches!(
            err,
            ClusterError::Disconnected { .. } | ClusterError::WorkerCrashed { .. }
        ),
        "{err:?}"
    );
    // Stats need every worker alive; with shard 0 permanently down they
    // error, typed, rather than hang.
    assert!(cluster.stats().is_err());
}

// ---------------------------------------------------------------------
// Gateway absorbs transient faults
// ---------------------------------------------------------------------

#[test]
fn gateway_retries_absorb_a_worker_crash_transparently() {
    // The first session's 4-warp window lands on shard 0; its second
    // executable job (the fill batch) crashes the worker mid-request.
    let (dev, injector) =
        faulty_device(FaultPlan::none().crash_at(0, 1), RecoveryConfig::default());
    let gw = dev.serve(ServeConfig::default());
    let client = gw.session_with_warps(4).unwrap();

    let got = block_on_timeout(request(&client, 8, 1.0), Duration::from_secs(30))
        .expect("request hung under fault injection")
        .expect("gateway retry should absorb the crash");
    assert_eq!(
        got.to_bits(),
        reference_bits(8, 1.0),
        "retried result diverged"
    );

    assert_eq!(injector.stats().worker_crashes, 1);
    let stats = gw.stats();
    assert!(stats.retries >= 1, "crash was not retried: {stats:?}");

    // All the new robustness counters render in the unified snapshot.
    let snap = gw.metrics_snapshot().unwrap();
    let json = snap.to_json();
    for key in [
        "fault.injected",
        "cluster.worker_restarts",
        "cluster.replayed_instructions",
        "serve.retries",
        "serve.deadline_misses",
        "serve.rejected_overload",
    ] {
        assert!(json.contains(key), "missing metric {key} in {json}");
    }
}

#[test]
fn retry_budget_exhaustion_surfaces_the_typed_error() {
    // More crashes than the gateway will retry: the transient error must
    // eventually surface, typed, rather than loop forever.
    let plan = FaultPlan::none()
        .crash_at(0, 1)
        .crash_at(0, 2)
        .crash_at(0, 3);
    let (dev, injector) = faulty_device(plan, RecoveryConfig::default());
    let gw = dev.serve(ServeConfig {
        max_retries: 1,
        ..ServeConfig::default()
    });
    let client = gw.session_with_warps(4).unwrap();

    let expected = reference_bits(8, 2.0);
    let mut saw_typed_error = false;
    let mut recovered = false;
    // Three consecutive crashes against a retry budget of one: some
    // requests fail (typed), and once the schedule drains a request must
    // succeed bit-identically — the cluster never wedges.
    for _ in 0..6 {
        let outcome = block_on_timeout(request(&client, 8, 2.0), Duration::from_secs(30))
            .expect("request hung under fault injection");
        match outcome {
            Ok(v) => {
                assert_eq!(v.to_bits(), expected, "post-crash result diverged");
                recovered = true;
                break;
            }
            Err(e) => {
                assert_eq!(e.class(), ErrorClass::Transient, "untyped error {e:?}");
                saw_typed_error = true;
            }
        }
    }
    assert!(saw_typed_error, "retry budget of 1 absorbed 3 crashes?");
    assert!(
        recovered,
        "cluster did not recover after the schedule drained"
    );
    assert_eq!(injector.stats().worker_crashes, 3);
}

// ---------------------------------------------------------------------
// Combined schedules: worker crash overlapping a link-fault window
// ---------------------------------------------------------------------

/// A request whose reduction *must* cross the interconnect: 512 elements
/// fill all 8 warps of the session window (4 per chip), so the first fold
/// copies shard 1's half onto shard 0 through staged bursts — the traffic
/// cycle-window link faults target. Values are exact multiples of 0.25,
/// so every partial sum is exactly representable and the result's bits
/// are placement- and order-independent.
async fn crossing_request(client: &ClusterClient, seed: f32) -> Result<f32> {
    let data: Vec<f32> = (0..512).map(|i| seed + (i % 16) as f32 * 0.25).collect();
    let x = client.upload_f32(&data).await?;
    client.sum_f32(&x).await
}

/// Fault-free reference bits for `crossing_request(seed)`.
fn crossing_reference_bits(seed: f32) -> u32 {
    let dev = Device::cluster(cfg(), SHARDS).unwrap();
    let gw = dev.serve(ServeConfig::default());
    let client = gw.session_with_warps(8).unwrap();
    block_on(crossing_request(&client, seed)).unwrap().to_bits()
}

#[test]
fn crash_inside_corruption_window_is_absorbed_by_one_retry_budget() {
    // Two overlapping fault sources: shard 0's worker crashes on its
    // second job while every staged burst in the first 6 000 modeled
    // cycles corrupts (detected). Retry backoff advances the modeled
    // clock, so retries *walk the request out of the window* — one
    // generous budget absorbs both faults transparently.
    let plan = FaultPlan::none().crash_at(0, 1).corrupt_window(0, 6_000);
    let (dev, injector) = faulty_device(plan, RecoveryConfig::default());
    let gw = dev.serve(ServeConfig {
        max_retries: 5,
        retry_backoff_cycles: 3_000,
        ..ServeConfig::default()
    });
    // An 8-warp window spans both chips so reductions stage crossing
    // bursts — the traffic the window corrupts.
    let client = gw.session_with_warps(8).unwrap();

    let got = block_on_timeout(crossing_request(&client, 3.0), Duration::from_secs(30))
        .expect("request hung under combined schedule")
        .expect("budget of 5 should absorb crash + window");
    assert_eq!(
        got.to_bits(),
        crossing_reference_bits(3.0),
        "combined-fault result diverged"
    );
    assert_eq!(injector.stats().worker_crashes, 1);
    assert!(
        injector.stats().link_corrupted >= 1,
        "window never fired: {:?}",
        injector.stats()
    );
    assert!(gw.stats().retries >= 2, "both faults should cost retries");
}

#[test]
fn tight_budget_under_combined_schedule_stays_typed_then_drains() {
    // Same overlap, but a budget of one cannot cross a 6 000-cycle window
    // with 1 000-cycle backoffs: some requests must surface the typed
    // transient error. Later requests start with the clock already past
    // the window, so the fleet of faults drains and service recovers
    // bit-identically — never a hang, never corruption.
    let plan = FaultPlan::none().crash_at(0, 1).corrupt_window(0, 6_000);
    let (dev, injector) = faulty_device(plan, RecoveryConfig::default());
    let gw = dev.serve(ServeConfig {
        max_retries: 1,
        retry_backoff_cycles: 1_000,
        ..ServeConfig::default()
    });
    let client = gw.session_with_warps(8).unwrap();

    let expected = crossing_reference_bits(6.0);
    let mut saw_typed_error = false;
    let mut recovered = false;
    for _ in 0..10 {
        let outcome = block_on_timeout(crossing_request(&client, 6.0), Duration::from_secs(30))
            .expect("request hung under combined schedule");
        match outcome {
            Ok(v) => {
                assert_eq!(v.to_bits(), expected, "post-drain result diverged");
                recovered = true;
                break;
            }
            Err(e) => {
                assert_eq!(e.class(), ErrorClass::Transient, "untyped error {e:?}");
                saw_typed_error = true;
                // Failed attempts still advance the modeled clock via
                // backoff; force progress out of the window regardless.
                dev.telemetry().advance_clock(dev.telemetry().now() + 1_000);
            }
        }
    }
    assert!(
        saw_typed_error,
        "a budget of 1 crossed a 6-backoff-wide window?"
    );
    assert!(recovered, "service did not recover after the window closed");
    assert!(injector.stats().link_corrupted >= 1);
}

#[test]
fn drop_window_partitions_the_link_then_heals() {
    // A pure cycle-window partition (every burst dropped, no worker
    // faults): inside the window crossing requests resolve typed; once
    // the modeled clock passes the window's end the same session serves
    // bit-identically again.
    let plan = FaultPlan::none().drop_window(2_000, 10_000);
    let (dev, injector) = faulty_device(plan, RecoveryConfig::default());
    let gw = dev.serve(ServeConfig {
        max_retries: 0,
        ..ServeConfig::default()
    });
    let client = gw.session_with_warps(8).unwrap();

    // Park the clock inside the window: with no retries, the first
    // crossing burst surfaces the typed link fault immediately.
    dev.telemetry().advance_clock(2_000);
    let err = block_on_timeout(crossing_request(&client, 7.0), Duration::from_secs(30))
        .expect("request hung inside drop window")
        .expect_err("a dropped burst with no retries must surface");
    assert_eq!(err.class(), ErrorClass::Transient, "{err:?}");
    assert!(injector.stats().link_dropped >= 1);

    // Heal: jump past the window and the same session works again.
    dev.telemetry().advance_clock(10_000);
    let got = block_on_timeout(crossing_request(&client, 7.0), Duration::from_secs(30))
        .expect("request hung after window closed")
        .expect("healed link should serve");
    assert_eq!(got.to_bits(), crossing_reference_bits(7.0));
}

// ---------------------------------------------------------------------
// Property: seeded schedules never hang and never silently corrupt
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded single-shard fault schedule (crashes, stalls, link
    /// drops/corruptions): every request either completes bit-identical
    /// to the fault-free reference or resolves to a *typed* error, within
    /// a wall-clock bound — no hangs, no silent corruption, and the
    /// cluster serves correctly once the schedule drains.
    #[test]
    fn seeded_fault_schedules_never_hang_or_corrupt(
        seed in any::<u64>(),
        shard in 0usize..SHARDS,
    ) {
        let profile = FaultProfile {
            shards: SHARDS,
            single_shard: Some(shard),
            worker_crashes: 2,
            worker_stalls: 1,
            max_stall_cycles: 512,
            link_drops: 1,
            link_corruptions: 1,
            job_horizon: 24,
            burst_horizon: 4,
        };
        let plan = FaultPlan::from_seed(seed, &profile);
        let (dev, injector) = faulty_device(plan.clone(), RecoveryConfig::default());
        let gw = dev.serve(ServeConfig { max_retries: 3, ..ServeConfig::default() });
        // An 8-warp window spans both chips, so reductions cross the
        // interconnect and the schedule's link faults can fire too.
        let client = gw.session_with_warps(8).unwrap();

        let expected = reference_bits(8, 4.0);
        for attempt in 0..4 {
            match block_on_timeout(request(&client, 8, 4.0), Duration::from_secs(30)) {
                Ok(Ok(v)) => {
                    prop_assert_eq!(
                        v.to_bits(), expected,
                        "silent corruption under plan {:?}", plan
                    );
                }
                Ok(Err(e)) => {
                    // Typed resolution is acceptable while faults fire;
                    // the error must carry a retry class.
                    let class = e.class();
                    prop_assert!(
                        class == ErrorClass::Transient || class == ErrorClass::Fatal,
                        "unexpected class {:?} for {:?}", class, e
                    );
                }
                Err(_) => prop_assert!(false, "request hung under plan {:?}", plan),
            }
            // Once every scheduled fault has fired, requests must succeed.
            if injector.stats().injected() >= plan.len() as u64 && attempt >= 1 {
                break;
            }
        }
        let drained = block_on_timeout(request(&client, 8, 5.0), Duration::from_secs(30));
        match drained {
            Ok(Ok(v)) => prop_assert_eq!(v.to_bits(), reference_bits(8, 5.0)),
            Ok(Err(e)) => {
                // A schedule can still hold unfired faults (the workload
                // may never reach their job indices); only transient
                // errors are acceptable here.
                prop_assert_eq!(e.class(), ErrorClass::Transient, "{:?}", e);
            }
            Err(_) => prop_assert!(false, "drain request hung under plan {:?}", plan),
        }
    }
}
