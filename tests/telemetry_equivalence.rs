//! Telemetry's zero-cost contract: recording is observation only. Serving
//! the same workload through the gateway with telemetry recording on must
//! produce **bit-identical** results to serving it with recording off (the
//! default), for shard-local and chip-crossing request mixes alike — and
//! the recording run must actually have attributed every request.

use futures::executor::block_on;
use futures::future::join_all;
use proptest::prelude::*;
use pypim::serve::ClusterClient;
use pypim::{Device, DeviceServeExt, PimConfig, RegOp, Result, ServeConfig};

const SHARDS: usize = 4;

/// 4 chips x 4 crossbars x 64 rows = 16 logical warps, 4 per chip.
fn cluster_dev() -> Device {
    Device::cluster(PimConfig::small().with_crossbars(4), SHARDS).unwrap()
}

/// Rounding-sensitive payload: any change to execution order shows up in
/// the result bits.
fn payload(cid: usize, req: usize, elems: usize, salt: u32) -> Vec<f32> {
    (0..elems)
        .map(|i| 0.1 + (cid * 17 + req * 5 + i + salt as usize) as f32 * 0.3)
        .collect()
}

/// One fused request: `sum(x * y + x)`. With multi-chip session windows
/// the reduction's warp moves cross chip boundaries, exercising the tagged
/// inline (interconnect) path; chip-local windows exercise the streamed
/// shard-worker path.
async fn request(client: &ClusterClient, values: &[f32]) -> Result<f32> {
    let mut plan = client.plan();
    let x = plan.upload_f32(values)?;
    let y = plan.full_f32(values.len(), 1.5)?;
    let xy = plan.mul(&x, &y)?;
    let z = plan.add(&xy, &x)?;
    let s = plan.reduce(&z, RegOp::Add)?;
    plan.run().await?;
    Ok(client.to_vec_f32(&s).await?[0])
}

/// Serves `clients x requests` through a fresh gateway and returns every
/// result's bit pattern in (client, request) order.
fn serve_bits(
    session_warps: u32,
    clients: usize,
    requests: usize,
    salt: u32,
    record: bool,
) -> Vec<u32> {
    let gateway = cluster_dev().serve(ServeConfig {
        session_warps,
        ..ServeConfig::default()
    });
    gateway.telemetry().set_enabled(record);
    let sessions: Vec<ClusterClient> = (0..clients).map(|_| gateway.session().unwrap()).collect();
    let elems = session_warps as usize * 64;
    let outcomes: Vec<Result<Vec<u32>>> = block_on(join_all(sessions.iter().enumerate().map(
        |(cid, client)| async move {
            let mut bits = Vec::new();
            for req in 0..requests {
                bits.push(
                    request(client, &payload(cid, req, elems, salt))
                        .await?
                        .to_bits(),
                );
            }
            Ok(bits)
        },
    )));
    if record {
        // The recording run must have attributed every request it served.
        let attributed: u64 = gateway
            .session_stats()
            .iter()
            .map(|&(_, requests, _)| requests)
            .sum();
        assert!(
            attributed >= (clients * requests) as u64,
            "recording run attributed {attributed} of {} requests",
            clients * requests
        );
    } else {
        assert!(
            gateway.session_stats().is_empty(),
            "disabled telemetry must record nothing"
        );
    }
    outcomes.into_iter().flat_map(|r| r.unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recording on vs off is bit-identical for random request mixes, both
    /// chip-local (4-warp) and chip-crossing (8-warp) session windows.
    #[test]
    fn gateway_results_bit_identical_recording_on_vs_off(
        crossing in any::<bool>(),
        requests in 1usize..3,
        salt in 0u32..1000,
    ) {
        let window = if crossing { 8u32 } else { 4u32 };
        let clients = (16 / window) as usize;
        let off = serve_bits(window, clients, requests, salt, false);
        let on = serve_bits(window, clients, requests, salt, true);
        prop_assert_eq!(off, on);
    }
}

/// Deterministic smoke of the same contract, exercised in plain `cargo
/// test` ordering: crossing windows, recording toggled mid-gateway.
#[test]
fn recording_toggle_is_invisible_to_results() {
    let off = serve_bits(8, 2, 2, 7, false);
    let on = serve_bits(8, 2, 2, 7, true);
    assert_eq!(off, on, "telemetry recording changed results");
}
