//! The `tests/sort.py` analog (§VI-A "Sorting"): bitonic sorting of random
//! tensors — floats and ints, power-of-two and ragged sizes, dense tensors
//! and strided views, intra-warp and multi-warp — validated against the
//! host's sort.

use pypim::{Device, PimConfig};
use rand::{Rng, SeedableRng};

fn device() -> Device {
    Device::new(PimConfig::small().with_crossbars(8).with_rows(16)).unwrap()
}

#[test]
fn sorts_floats_of_many_sizes() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(7);
    for n in [1usize, 2, 3, 5, 8, 17, 32, 63, 64, 100] {
        let vals: Vec<f32> = (0..n).map(|_| r.gen_range(-1e6f32..1e6)).collect();
        let t = dev.from_slice_f32(&vals).unwrap();
        let got = t.sorted().unwrap().to_vec_f32().unwrap();
        let mut expect = vals.clone();
        expect.sort_by(f32::total_cmp);
        assert_eq!(got, expect, "sort of {n} floats");
        // The input tensor is untouched (sorted() is out-of-place).
        assert_eq!(t.to_vec_f32().unwrap(), vals);
    }
}

#[test]
fn sorts_ints() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(8);
    for n in [4usize, 16, 50, 128] {
        let vals: Vec<i32> = (0..n).map(|_| r.gen()).collect();
        let t = dev.from_slice_i32(&vals).unwrap();
        let got = t.sorted().unwrap().to_vec_i32().unwrap();
        let mut expect = vals.clone();
        expect.sort_unstable();
        assert_eq!(got, expect, "sort of {n} ints");
    }
}

#[test]
fn sorts_with_duplicates_and_specials() {
    let dev = device();
    let vals = vec![
        2.5f32,
        -0.0,
        2.5,
        0.0,
        f32::INFINITY,
        -1.0,
        f32::NEG_INFINITY,
        2.5,
        -1.0,
        1e-40,
    ];
    let t = dev.from_slice_f32(&vals).unwrap();
    let got = t.sorted().unwrap().to_vec_f32().unwrap();
    let mut expect = vals.clone();
    expect.sort_by(f32::total_cmp);
    // -0.0 and +0.0 compare equal under IEEE; accept either order.
    for (g, e) in got.iter().zip(&expect) {
        assert_eq!(g.partial_cmp(e), Some(std::cmp::Ordering::Equal), "{got:?}");
    }
    assert_eq!(got[0], f32::NEG_INFINITY);
    assert_eq!(*got.last().unwrap(), f32::INFINITY);
}

#[test]
fn sorts_views_in_place() {
    // The paper's interactive session: x[::2].sort() touches only the
    // even-indexed elements.
    let dev = device();
    let vals: Vec<f32> = vec![9.0, 1.0, 7.0, 2.0, 5.0, 3.0, 3.0, 4.0, 1.0, 5.0];
    let x = dev.from_slice_f32(&vals).unwrap();
    let mut even = x.even().unwrap();
    even.sort().unwrap();
    let after = x.to_vec_f32().unwrap();
    assert_eq!(
        after,
        vec![1.0, 1.0, 3.0, 2.0, 5.0, 3.0, 7.0, 4.0, 9.0, 5.0]
    );
}

#[test]
fn sorts_multi_warp_tensors() {
    // Sorting across all 8 warps exercises inter-crossbar movement.
    let dev = device();
    let n = 128; // all threads
    let mut r = rand::rngs::StdRng::seed_from_u64(9);
    let vals: Vec<f32> = (0..n).map(|_| r.gen_range(-50.0f32..50.0)).collect();
    let t = dev.from_slice_f32(&vals).unwrap();
    dev.reset_counters().unwrap();
    let got = t.sorted().unwrap().to_vec_f32().unwrap();
    let mut expect = vals.clone();
    expect.sort_by(f32::total_cmp);
    assert_eq!(got, expect);
    assert!(
        dev.profiler().unwrap().ops.mv > 0,
        "multi-warp sort must move data between crossbars"
    );
}

#[test]
fn sorted_already_sorted_and_reverse() {
    let dev = device();
    let asc: Vec<i32> = (0..32).collect();
    let desc: Vec<i32> = (0..32).rev().collect();
    for vals in [asc.clone(), desc] {
        let t = dev.from_slice_i32(&vals).unwrap();
        assert_eq!(t.sorted().unwrap().to_vec_i32().unwrap(), asc);
    }
}
