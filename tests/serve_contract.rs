//! The serving gateway's contract: interleaved multi-client execution
//! through `pim-serve` is **bit-identical** to serving every client
//! sequentially through the synchronous tensor API, and concurrent
//! sessions' placement stripes never alias each other's warp windows.

use futures::executor::block_on;
use futures::future::join_all;
use proptest::prelude::*;
use pypim::serve::ClusterClient;
use pypim::{Device, DeviceServeExt, PimConfig, PlacementHint, RegOp, Result, ServeConfig, Tensor};

const SHARDS: usize = 4;

/// 4 chips x 4 crossbars x 64 rows = 16 logical warps.
fn cluster_dev() -> Device {
    Device::cluster(PimConfig::small().with_crossbars(4), SHARDS).unwrap()
}

/// Request payload with values whose float sums are rounding-sensitive, so
/// any change to the reduction's combine order shows up in the bit
/// patterns.
fn payload(cid: usize, req: usize, elems: usize) -> Vec<f32> {
    (0..elems)
        .map(|i| 0.1 + (cid * 17 + req * 5 + i) as f32 * 0.3)
        .collect()
}

/// The async request program: `sum(-(x * y) + x)` over the gateway.
async fn request_async(client: &ClusterClient, values: &[f32]) -> Result<f32> {
    let x = client.upload_f32(values).await?;
    let y = client.full_f32(values.len(), 1.5).await?;
    let xy = client.mul(&x, &y).await?;
    let neg = client.unary(RegOp::Neg, &xy).await?;
    let z = client.add(&neg, &x).await?;
    client.sum_f32(&z).await
}

/// The identical program through the blocking tensor API.
fn request_sync(dev: &Device, values: &[f32]) -> Result<f32> {
    let x = dev.from_slice_f32(values)?;
    let y = dev.full_f32(values.len(), 1.5)?;
    let xy = (&x * &y)?;
    let neg = (-&xy)?;
    let z = (&neg + &x)?;
    z.sum_f32()
}

#[test]
fn interleaved_gateway_matches_sequential_sync_bitwise() {
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 2;
    const ELEMS: usize = 96; // 1.5 warps: exercises partial-warp ranges

    // Sequential reference: one client at a time on a fresh cluster.
    let sync_dev = cluster_dev();
    let mut reference = Vec::new();
    for cid in 0..CLIENTS {
        for req in 0..REQUESTS {
            reference.push(
                request_sync(&sync_dev, &payload(cid, req, ELEMS))
                    .unwrap()
                    .to_bits(),
            );
        }
    }

    // Interleaved: all clients in flight at once through the gateway.
    let gateway = cluster_dev().serve(ServeConfig::default());
    let clients: Vec<ClusterClient> = (0..CLIENTS)
        .map(|_| gateway.session_with_warps(4).unwrap())
        .collect();
    let outcomes: Vec<Result<Vec<u32>>> = block_on(join_all(clients.iter().enumerate().map(
        |(cid, client)| async move {
            let mut bits = Vec::new();
            for req in 0..REQUESTS {
                bits.push(
                    request_async(client, &payload(cid, req, ELEMS))
                        .await?
                        .to_bits(),
                );
            }
            Ok(bits)
        },
    )));

    let got: Vec<u32> = outcomes.into_iter().flat_map(|o| o.unwrap()).collect();
    assert_eq!(
        got, reference,
        "gateway results diverged bitwise from sequential execution"
    );
    // The run exercised actual coalescing machinery.
    assert!(gateway.stats().groups > 0);
}

/// The fused request pipeline: whole request planned up front, one
/// submission + one read.
async fn request_fused(client: &ClusterClient, values: &[f32]) -> Result<f32> {
    let mut plan = client.plan();
    let x = plan.upload_f32(values)?;
    let y = plan.full_f32(values.len(), 1.5)?;
    let xy = plan.mul(&x, &y)?;
    let neg = plan.unary(RegOp::Neg, &xy)?;
    let z = plan.add(&neg, &x)?;
    let s = plan.reduce(&z, RegOp::Add)?;
    plan.run().await?;
    Ok(client.to_vec_f32(&s).await?[0])
}

#[test]
fn fused_plans_match_sequential_sync_bitwise() {
    const CLIENTS: usize = 4;
    const ELEMS: usize = 128;

    let sync_dev = cluster_dev();
    let reference: Vec<u32> = (0..CLIENTS)
        .map(|cid| {
            request_sync(&sync_dev, &payload(cid, 0, ELEMS))
                .unwrap()
                .to_bits()
        })
        .collect();

    let gateway = cluster_dev().serve(ServeConfig::default());
    let clients: Vec<ClusterClient> = (0..CLIENTS)
        .map(|_| gateway.session_with_warps(4).unwrap())
        .collect();
    let got: Vec<u32> = block_on(join_all(clients.iter().enumerate().map(
        |(cid, client)| async move {
            request_fused(client, &payload(cid, 0, ELEMS))
                .await
                .unwrap()
                .to_bits()
        },
    )));
    assert_eq!(
        got, reference,
        "fused pipelines diverged bitwise from sequential execution"
    );
    // A whole fused request is one gateway batch plus nothing else — far
    // fewer submissions than stepwise serving.
    let stats = gateway.stats();
    assert!(stats.batches <= (CLIENTS as u64) * 2);
}

#[test]
fn gateway_int_pipeline_matches_sync() {
    let gateway = cluster_dev().serve(ServeConfig::default());
    let client = gateway.session().unwrap();
    let data: Vec<i32> = (0..64).map(|i| i * 3 - 50).collect();
    let (async_vec, async_sum) = block_on(async {
        let t = client.upload_i32(&data).await?;
        let u = client.full_i32(data.len(), 7).await?;
        let v = client.mul(&t, &u).await?;
        let w = client.add(&v, &t).await?;
        Ok::<_, pypim::CoreError>((client.to_vec_i32(&w).await?, client.sum_i32(&w).await?))
    })
    .unwrap();

    let sync_dev = cluster_dev();
    let t = sync_dev.from_slice_i32(&data).unwrap();
    let u = sync_dev.full_i32(data.len(), 7).unwrap();
    let w = ((&t * &u) + &t).unwrap();
    assert_eq!(async_vec, w.to_vec_i32().unwrap());
    assert_eq!(async_sum, w.sum_i32().unwrap());
}

#[test]
fn gateway_handles_misaligned_operands_like_sync() {
    // Views force the alignment fallback (a copy) inside the gateway; the
    // values must still match the sync path bit-for-bit.
    let gateway = cluster_dev().serve(ServeConfig::default());
    let client = gateway.session().unwrap();
    let data: Vec<f32> = (0..64).map(|i| 0.7 + i as f32 * 0.11).collect();
    let got = block_on(async {
        let t = client.upload_f32(&data).await?;
        let even = t.even()?;
        let odd = t.odd()?;
        let s = client.add(&even, &odd).await?;
        client.sum_f32(&s).await
    })
    .unwrap();

    let sync_dev = cluster_dev();
    let t = sync_dev.from_slice_f32(&data).unwrap();
    let s = (&t.even().unwrap() + &t.odd().unwrap()).unwrap();
    assert_eq!(got.to_bits(), s.sum_f32().unwrap().to_bits());
}

/// Stripes of a tensor, as a window for overlap checks.
fn stripe_window(t: &Tensor) -> PlacementHint {
    PlacementHint {
        warp_start: t.element_locs()[0].0,
        warps: 1, // start warp is enough: combined with full containment below
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent sessions' placement stripes never alias each other's
    /// warp windows: windows are pairwise disjoint, and every tensor a
    /// session allocates within its capacity stays inside its own window.
    #[test]
    fn session_stripes_never_alias_windows(
        sessions in 2usize..5,
        window_warps in 2u32..5,
        tensors_per_session in 1usize..5,
        elems_factor in 1usize..3,
    ) {
        let dev = cluster_dev(); // 16 warps, 64 rows
        let gateway = dev.serve(ServeConfig {
            session_warps: window_warps,
            ..ServeConfig::default()
        });
        let total_warps = dev.config().crossbars as u32;
        prop_assume!(window_warps * sessions as u32 <= total_warps);
        let rows = dev.config().rows;
        let clients: Vec<ClusterClient> = (0..sessions)
            .map(|_| gateway.session().unwrap())
            .collect();
        // Windows pairwise disjoint.
        for (i, a) in clients.iter().enumerate() {
            for b in clients.iter().skip(i + 1) {
                prop_assert!(
                    !a.window().overlaps(&b.window()),
                    "windows alias: {:?} vs {:?}", a.window(), b.window()
                );
            }
        }
        // In-capacity allocations stay inside their session's window (16
        // registers per window; we allocate far fewer).
        let elems = elems_factor * rows; // 1-2 warps per tensor
        let held: Vec<(usize, Tensor)> = block_on(join_all(
            clients.iter().enumerate().flat_map(|(i, client)| {
                (0..tensors_per_session).map(move |k| async move {
                    (i, client.full_f32(elems, k as f32).await.unwrap())
                })
            }),
        ));
        for (owner, t) in &held {
            let w = clients[*owner].window();
            let start = stripe_window(t).warp_start;
            let span = elems.div_ceil(rows) as u32;
            prop_assert!(
                w.contains(start, span),
                "session {owner} stripe at warp {start} (+{span}) escaped window {w:?}"
            );
            for (other, client) in clients.iter().enumerate() {
                if other != *owner {
                    prop_assert!(
                        !client.window().contains(start, 1),
                        "session {owner} stripe landed in session {other}'s window"
                    );
                }
            }
        }
    }
}
