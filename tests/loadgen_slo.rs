//! Open-loop loadgen acceptance contract, through the `pypim` facade:
//!
//! * a run past the knee shows **monotonically diverging** windowed
//!   gateway queue-wait p99 — the open-loop signature of unbounded queue
//!   growth that a closed-loop harness cannot produce;
//! * the same seed reproduces the SLO report bit-for-bit on a single-chip
//!   device (inline execution, no worker threads);
//! * arrival schedules are pure functions of the seed.

use pypim::loadgen::{
    build_schedule, run_slo, ArrivalProfile, ClassSpec, LoadgenConfig, RequestShape, SloConfig,
};
use pypim::{Device, DeviceServeExt, PimConfig, Result, ServeConfig};

fn single_chip_gateway() -> Result<pypim::Gateway> {
    let dev = Device::new(PimConfig::small().with_crossbars(8))?;
    Ok(dev.serve(ServeConfig {
        // Unbounded queues: overload must queue, not fast-fail.
        max_queue_depth: 0,
        ..ServeConfig::default()
    }))
}

fn overload_cfg() -> LoadgenConfig {
    LoadgenConfig {
        seed: 42,
        horizon_cycles: 1_000_000,
        window_cycles: 100_000,
        classes: vec![
            ClassSpec::new(
                "elementwise",
                RequestShape::Elementwise,
                // A few times the single chip's measured capacity (a
                // couple hundred rps at 16 elements): past the knee but
                // not so far that the run collapses into one or two pump
                // drains — the divergence needs several active windows.
                ArrivalProfile::Poisson { rate: 900.0 },
                16,
            ),
            ClassSpec::new(
                "fused",
                RequestShape::Fused,
                ArrivalProfile::Poisson { rate: 300.0 },
                16,
            ),
        ],
        sessions_per_class: 2,
        latency_target_cycles: 0,
        drain: false, // abandon the backlog at the horizon: the point saturates
    }
}

#[test]
fn past_knee_queue_wait_p99_diverges_across_windows() -> Result<()> {
    let gateway = single_chip_gateway()?;
    let (report, slo) = run_slo(&gateway, &overload_cfg(), SloConfig::default())?;
    assert!(
        report.achieved_rps < 0.8 * report.offered_rps,
        "offered {:.0} rps was meant to overload (achieved {:.0})",
        report.offered_rps,
        report.achieved_rps,
    );

    // The windowed queue-wait p99 series over windows that saw
    // submissions: monotonically non-decreasing, strictly growing overall.
    let p99s: Vec<u64> = report
        .windows
        .iter()
        .filter_map(|w| w.histogram("serve.queue_wait_cycles"))
        .filter(|h| h.count > 0)
        .map(|h| h.p99)
        .collect();
    assert!(
        p99s.len() >= 3,
        "need ≥3 active windows to call divergence, got {p99s:?}"
    );
    for pair in p99s.windows(2) {
        assert!(
            pair[1] >= pair[0],
            "queue-wait p99 dipped under sustained overload: {p99s:?}"
        );
    }
    let first = *p99s.iter().find(|&&p| p > 0).expect("all-zero p99 series");
    let last = *p99s.last().expect("nonempty");
    assert!(
        last >= first.saturating_mul(4),
        "queue-wait p99 did not diverge: first nonzero {first}, last {last} ({p99s:?})"
    );

    // The SLO verdict sees the same series and must be violated.
    assert!(!slo.met, "an overloaded run cannot meet the SLO");
    assert!(
        slo.windows.iter().any(|w| w.burn_rate > 1.0),
        "no window burned the error budget under overload"
    );
    Ok(())
}

#[test]
fn same_seed_reproduces_slo_json_through_facade() -> Result<()> {
    let slo = SloConfig {
        target_p99_cycles: 40_000,
        error_budget: 0.02,
    };
    let (_, a) = run_slo(&single_chip_gateway()?, &overload_cfg(), slo)?;
    let (_, b) = run_slo(&single_chip_gateway()?, &overload_cfg(), slo)?;
    assert_eq!(a.to_json(), b.to_json());
    Ok(())
}

#[test]
fn schedules_are_pure_functions_of_the_seed() {
    let profiles = [
        ArrivalProfile::Poisson { rate: 500.0 },
        ArrivalProfile::Burst {
            base: 100.0,
            burst_size: 4,
            period_cycles: 50_000,
        },
        ArrivalProfile::Ramp {
            start: 0.0,
            end: 1_000.0,
        },
    ];
    let a = build_schedule(&profiles, 7, 200_000);
    let b = build_schedule(&profiles, 7, 200_000);
    let c = build_schedule(&profiles, 8, 200_000);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must give the same schedule");
    assert_ne!(a, c, "different seeds must give different schedules");
    // Sorted by cycle: the driver injects in order.
    assert!(a.windows(2).all(|p| p[0].cycle <= p[1].cycle));
}
