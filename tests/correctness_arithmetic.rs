//! The `tests/unit.py` analog of the paper's artifact (§VI-A): every
//! Table II operation on randomly generated integer and floating-point
//! tensors, executed through the whole stack (tensor library → ISA → host
//! driver → micro-operations → bit-accurate simulator, strict mode) and
//! compared element-wise against native Rust semantics — the same IEEE-754
//! oracle the paper uses via NumPy.

use pypim::{Device, PimConfig, RegOp, Tensor};
use rand::{Rng, SeedableRng};

/// A Table II operation paired with its host-side reference semantics.
type IntCase<R> = (RegOp, fn(i32, i32) -> R);
type FloatCase<R> = (RegOp, fn(f32, f32) -> R);

fn device() -> Device {
    // Tiny geometry keeps the bit-accurate simulation fast; results are
    // geometry-independent.
    Device::new(PimConfig::small().with_crossbars(2).with_rows(16)).unwrap()
}

const N: usize = 24;

fn int_inputs(seed: u64) -> Vec<i32> {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let mut v: Vec<i32> = (0..N - 4).map(|_| r.gen()).collect();
    v.extend([0, -1, i32::MIN, i32::MAX]);
    v
}

fn float_inputs(seed: u64) -> Vec<f32> {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..N - 6)
        .map(|_| f32::from_bits(r.gen::<u32>()))
        .map(|f| if f.is_nan() { 1.5 } else { f })
        .collect();
    v.extend([0.0, -0.0, f32::INFINITY, f32::NEG_INFINITY, 1e-40, f32::MAX]);
    v
}

fn pim_int(dev: &Device, v: &[i32]) -> Tensor {
    dev.from_slice_i32(v).unwrap()
}

fn pim_float(dev: &Device, v: &[f32]) -> Tensor {
    dev.from_slice_f32(v).unwrap()
}

#[test]
fn int_arithmetic_matches_native() {
    let dev = device();
    let (av, bv) = (int_inputs(1), int_inputs(2));
    let (a, b) = (pim_int(&dev, &av), pim_int(&dev, &bv));
    let cases: [IntCase<i32>; 5] = [
        (RegOp::Add, |x, y| x.wrapping_add(y)),
        (RegOp::Sub, |x, y| x.wrapping_sub(y)),
        (RegOp::Mul, |x, y| x.wrapping_mul(y)),
        (
            RegOp::Div,
            |x, y| if y == 0 { 0 } else { x.wrapping_div(y) },
        ),
        (
            RegOp::Mod,
            |x, y| if y == 0 { x } else { x.wrapping_rem(y) },
        ),
    ];
    for (op, native) in cases {
        let got = a.binary(op, &b).unwrap().to_vec_i32().unwrap();
        for i in 0..N {
            assert_eq!(got[i], native(av[i], bv[i]), "{op}({}, {})", av[i], bv[i]);
        }
    }
}

#[test]
fn int_unary_matches_native() {
    let dev = device();
    let av = int_inputs(3);
    let a = pim_int(&dev, &av);
    let neg = (-&a).unwrap().to_vec_i32().unwrap();
    let abs = a.abs().unwrap().to_vec_i32().unwrap();
    let sign = a.sign().unwrap().to_vec_i32().unwrap();
    let zero = a.zero_mask().unwrap().to_vec_i32().unwrap();
    for i in 0..N {
        assert_eq!(neg[i], av[i].wrapping_neg(), "neg({})", av[i]);
        assert_eq!(abs[i], av[i].wrapping_abs(), "abs({})", av[i]);
        assert_eq!(sign[i], av[i].signum(), "sign({})", av[i]);
        assert_eq!(zero[i], (av[i] == 0) as i32, "zero({})", av[i]);
    }
}

#[test]
fn int_comparisons_match_native() {
    let dev = device();
    let (mut av, bv) = (int_inputs(4), int_inputs(5));
    av[0] = bv[0]; // force an equal pair
    let (a, b) = (pim_int(&dev, &av), pim_int(&dev, &bv));
    let cases: [IntCase<bool>; 6] = [
        (RegOp::Lt, |x, y| x < y),
        (RegOp::Le, |x, y| x <= y),
        (RegOp::Gt, |x, y| x > y),
        (RegOp::Ge, |x, y| x >= y),
        (RegOp::Eq, |x, y| x == y),
        (RegOp::Ne, |x, y| x != y),
    ];
    for (op, native) in cases {
        let got = a.binary(op, &b).unwrap().to_vec_i32().unwrap();
        for i in 0..N {
            assert_eq!(
                got[i],
                native(av[i], bv[i]) as i32,
                "{op}({}, {})",
                av[i],
                bv[i]
            );
        }
    }
}

#[test]
fn float_arithmetic_matches_ieee() {
    let dev = device();
    let (av, bv) = (float_inputs(6), float_inputs(7));
    let (a, b) = (pim_float(&dev, &av), pim_float(&dev, &bv));
    let cases: [FloatCase<f32>; 4] = [
        (RegOp::Add, |x, y| x + y),
        (RegOp::Sub, |x, y| x - y),
        (RegOp::Mul, |x, y| x * y),
        (RegOp::Div, |x, y| x / y),
    ];
    for (op, native) in cases {
        let got = a.binary(op, &b).unwrap().to_vec_f32().unwrap();
        for i in 0..N {
            let expect = native(av[i], bv[i]);
            if expect.is_nan() {
                assert!(got[i].is_nan(), "{op}({}, {}) should be NaN", av[i], bv[i]);
            } else {
                assert_eq!(
                    got[i].to_bits(),
                    expect.to_bits(),
                    "{op}({}, {}): got {} expected {}",
                    av[i],
                    bv[i],
                    got[i],
                    expect
                );
            }
        }
    }
}

#[test]
fn float_comparisons_follow_ieee() {
    let dev = device();
    let mut av = float_inputs(8);
    let mut bv = float_inputs(9);
    av[0] = f32::NAN; // NaN is unordered
    bv[1] = f32::NAN;
    av[2] = 0.0;
    bv[2] = -0.0; // -0 == +0
    let (a, b) = (pim_float(&dev, &av), pim_float(&dev, &bv));
    let cases: [FloatCase<bool>; 6] = [
        (RegOp::Lt, |x, y| x < y),
        (RegOp::Le, |x, y| x <= y),
        (RegOp::Gt, |x, y| x > y),
        (RegOp::Ge, |x, y| x >= y),
        (RegOp::Eq, |x, y| x == y),
        (RegOp::Ne, |x, y| x != y),
    ];
    for (op, native) in cases {
        let got = a.binary(op, &b).unwrap().to_vec_i32().unwrap();
        for i in 0..N {
            assert_eq!(
                got[i],
                native(av[i], bv[i]) as i32,
                "{op}({}, {})",
                av[i],
                bv[i]
            );
        }
    }
}

#[test]
fn bitwise_ops_match_native() {
    let dev = device();
    let (av, bv) = (int_inputs(10), int_inputs(11));
    let (a, b) = (pim_int(&dev, &av), pim_int(&dev, &bv));
    let and = a.bit_and(&b).unwrap().to_vec_i32().unwrap();
    let or = a.bit_or(&b).unwrap().to_vec_i32().unwrap();
    let xor = a.bit_xor(&b).unwrap().to_vec_i32().unwrap();
    let not = a.bit_not().unwrap().to_vec_i32().unwrap();
    for i in 0..N {
        assert_eq!(and[i], av[i] & bv[i]);
        assert_eq!(or[i], av[i] | bv[i]);
        assert_eq!(xor[i], av[i] ^ bv[i]);
        assert_eq!(not[i], !av[i]);
    }
}

#[test]
fn mux_selects_per_element() {
    let dev = device();
    let cond_v: Vec<i32> = (0..N as i32).map(|i| i % 3 - 1).collect(); // -1, 0, 1, ...
    let (av, bv) = (float_inputs(12), float_inputs(13));
    let cond = pim_int(&dev, &cond_v);
    let (a, b) = (pim_float(&dev, &av), pim_float(&dev, &bv));
    let got = cond.select(&a, &b).unwrap().to_vec_f32().unwrap();
    for i in 0..N {
        let expect = if cond_v[i] != 0 { av[i] } else { bv[i] };
        assert_eq!(got[i].to_bits(), expect.to_bits(), "mux[{i}]");
    }
}

#[test]
fn scalar_operands_broadcast() {
    let dev = device();
    let av = float_inputs(14);
    let a = pim_float(&dev, &av);
    let got = (&a * 2.5f32).unwrap().to_vec_f32().unwrap();
    for i in 0..N {
        let expect = av[i] * 2.5;
        if expect.is_nan() {
            assert!(got[i].is_nan());
        } else {
            assert_eq!(got[i].to_bits(), expect.to_bits(), "{} * 2.5", av[i]);
        }
    }
    let iv = int_inputs(15);
    let t = pim_int(&dev, &iv);
    let got = (&t + 1000i32).unwrap().to_vec_i32().unwrap();
    for i in 0..N {
        assert_eq!(got[i], iv[i].wrapping_add(1000));
    }
}

#[test]
fn float_sign_and_zero() {
    let dev = device();
    let av = vec![
        3.5f32,
        -2.0,
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        1e-40,
        -1e-40,
    ];
    let a = pim_float(&dev, &av);
    let sign = a.sign().unwrap().to_vec_f32().unwrap();
    let zero = a.zero_mask().unwrap().to_vec_f32().unwrap();
    let abs = a.abs().unwrap().to_vec_f32().unwrap();
    let expect_sign = [1.0f32, -1.0, 0.0, -0.0, 1.0, -1.0, 1.0, -1.0];
    for i in 0..av.len() {
        assert_eq!(
            sign[i].to_bits(),
            expect_sign[i].to_bits(),
            "sign({})",
            av[i]
        );
        assert_eq!(zero[i], (av[i] == 0.0) as i32 as f32, "zero({})", av[i]);
        assert_eq!(abs[i].to_bits(), av[i].abs().to_bits(), "abs({})", av[i]);
    }
}
