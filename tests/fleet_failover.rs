//! Multi-host failover, end to end: seeded host-level fault schedules
//! (crashes, stalls, partitions) against the fleet router must never hang
//! and never silently corrupt — every request either completes
//! bit-identical to a fault-free run or resolves to a typed
//! [`ErrorClass`] error — and killing the leader mid-load re-elects
//! deterministically and re-places the orphaned sessions, with the
//! `fleet.*` counters matching the schedule exactly.

use futures::executor::{block_on, block_on_timeout};
use proptest::prelude::*;
use pypim::fleet::{Fleet, FleetConfig};
use pypim::loadgen::{run_fleet, ArrivalProfile, ClassSpec, LoadgenConfig, RequestShape};
use pypim::{
    ClusterClient, ErrorClass, HostFault, HostFaultPlan, HostFaultProfile, PimConfig, Result,
    ServeConfig,
};
use std::collections::BTreeSet;
use std::time::Duration;

fn fleet_cfg(hosts: usize, fault: HostFaultPlan) -> FleetConfig {
    FleetConfig {
        hosts,
        chip: PimConfig::small().with_crossbars(8),
        serve: ServeConfig {
            max_queue_depth: 0,
            ..ServeConfig::default()
        },
        fault,
        ..FleetConfig::default()
    }
}

/// The serving request used throughout: `sum(x * 2 + x)` over exactly
/// representable values, so the result's bits are placement-independent.
async fn request(client: &ClusterClient, n: usize, seed: f32) -> Result<f32> {
    let data: Vec<f32> = (0..n).map(|i| seed + i as f32 * 0.25).collect();
    let x = client.upload_f32(&data).await?;
    let y = client.full_f32(n, 2.0).await?;
    let xy = client.mul(&x, &y).await?;
    let z = client.add(&xy, &x).await?;
    client.sum_f32(&z).await
}

/// Fault-free reference bits for `request(n, seed)` on a one-host fleet.
fn reference_bits(n: usize, seed: f32) -> u32 {
    let fleet = Fleet::new(fleet_cfg(1, HostFaultPlan::none())).unwrap();
    let session = fleet.session().unwrap();
    block_on(session.run(|client| Box::pin(async move { request(client, n, seed).await })))
        .unwrap()
        .to_bits()
}

/// Hosts the plan permanently crashes (each lapses exactly once).
fn crashed_hosts(plan: &HostFaultPlan) -> BTreeSet<usize> {
    plan.events()
        .iter()
        .filter(|&&(_, _, f)| f == HostFault::Crash)
        .map(|&(_, h, _)| h)
        .collect()
}

fn open_loop_cfg(seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        seed,
        horizon_cycles: 300_000,
        window_cycles: 60_000,
        classes: vec![ClassSpec::new(
            "fused",
            RequestShape::Fused,
            ArrivalProfile::Poisson { rate: 60.0 },
            16,
        )],
        sessions_per_class: 2,
        latency_target_cycles: 0,
        drain: true,
    }
}

// ---------------------------------------------------------------------
// Fault-free fleet is bit-identical to a single host
// ---------------------------------------------------------------------

#[test]
fn fault_free_fleet_matches_single_host_bits() {
    let fleet = Fleet::new(fleet_cfg(3, HostFaultPlan::none())).unwrap();
    let expected = reference_bits(16, 1.0);
    // Sessions land on different hosts; results must not depend on which.
    for _ in 0..3 {
        let session = fleet.session().unwrap();
        let got = block_on_timeout(
            session.run(|client| Box::pin(async move { request(client, 16, 1.0).await })),
            Duration::from_secs(30),
        )
        .expect("fault-free request hung")
        .unwrap();
        assert_eq!(got.to_bits(), expected, "placement changed the bits");
    }
    assert_eq!(fleet.stats().failovers, 0);
}

// ---------------------------------------------------------------------
// Leader kill mid-load: deterministic re-election and re-placement
// ---------------------------------------------------------------------

#[test]
fn leader_kill_mid_load_reelects_and_replaces_orphans() {
    let plan = HostFaultPlan::none().crash_at(0, 150_000);
    let fleet = Fleet::new(fleet_cfg(3, plan.clone())).unwrap();
    assert_eq!(fleet.leader().unwrap().holder, 0, "host 0 leads at start");

    let report = run_fleet(&fleet, &open_loop_cfg(23)).unwrap();

    // Counters match the schedule: one crashed host → exactly one
    // failover and one leadership change (the initial election happened
    // before the run), and the next host index takes over.
    assert_eq!(report.fleet.failovers, 1);
    assert_eq!(report.fleet.failovers as usize, crashed_hosts(&plan).len());
    assert_eq!(report.fleet.leader_changes, 1);
    let lease = fleet.leader().unwrap();
    assert_eq!(lease.holder, 1, "lowest surviving index must take over");
    assert_eq!(lease.epoch, 1, "handover must bump the epoch");

    // The dead host's session pool entries moved and their in-flight
    // work was re-issued; with two survivors nothing may fail.
    assert!(report.fleet.orphaned_sessions >= 1);
    assert_eq!(report.completed + report.failed, report.injected);
    assert_eq!(report.failed, 0, "survivors must absorb the load");
    assert!(report.failover_cycles.count >= 1);
    assert!(
        report.failover_cycles.p99 > 0,
        "failover detection latency must be observable"
    );
    assert_eq!(fleet.live_hosts(), 2);
}

#[test]
fn leader_kill_report_is_bit_identical_across_runs() {
    let make = || Fleet::new(fleet_cfg(3, HostFaultPlan::none().crash_at(0, 150_000)));
    let a = run_fleet(&make().unwrap(), &open_loop_cfg(7)).unwrap();
    let b = run_fleet(&make().unwrap(), &open_loop_cfg(7)).unwrap();
    assert_eq!(a.end_cycle, b.end_cycle, "failover must replay exactly");
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.reissued, b.reissued);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert_eq!(a.failover_cycles.p99, b.failover_cycles.p99);
    assert_eq!(a.windows, b.windows, "window series must be identical");
}

// ---------------------------------------------------------------------
// Properties: seeded host schedules never hang and never corrupt
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded host-fault schedule over a 3-host fleet with one
    /// guaranteed survivor: every request either completes bit-identical
    /// to the fault-free reference or resolves to a typed retryable
    /// error, within a wall-clock bound — no hangs — and once the
    /// schedule drains a fresh request on the survivors succeeds.
    #[test]
    fn seeded_host_schedules_never_hang_or_corrupt(seed in any::<u64>()) {
        let profile = HostFaultProfile {
            hosts: 3,
            single_host: None,
            crashes: 2,
            stalls: 1,
            partitions: 1,
            max_outage_cycles: 50_000,
            cycle_horizon: 200_000,
            spare_host: Some(2),
        };
        let plan = HostFaultPlan::from_seed(seed, &profile);
        let fleet = Fleet::new(fleet_cfg(3, plan.clone())).unwrap();
        let session = fleet.session().unwrap();
        let expected = reference_bits(8, 4.0);

        // Walk the modeled clock across the whole schedule plus the
        // longest possible outage, issuing a request at every step.
        for step in 1..=16u64 {
            fleet.telemetry().advance_clock(step * 25_000);
            fleet.tick_now();
            let outcome = block_on_timeout(
                session.run(|client| {
                    Box::pin(async move { request(client, 8, 4.0).await })
                }),
                Duration::from_secs(30),
            );
            match outcome {
                Ok(Ok(v)) => prop_assert_eq!(
                    v.to_bits(), expected,
                    "silent corruption under plan {:?}", plan
                ),
                Ok(Err(e)) => {
                    let class = e.class();
                    prop_assert!(
                        matches!(
                            class,
                            ErrorClass::Transient | ErrorClass::Overload | ErrorClass::Evicted
                        ),
                        "unexpected class {:?} for {:?} under plan {:?}", class, e, plan
                    );
                }
                Err(_) => prop_assert!(false, "request hung under plan {:?}", plan),
            }
        }

        // Every crash lapses exactly once; stalls/partitions add at most
        // one failover each.
        let crashed = crashed_hosts(&plan);
        let stats = fleet.stats();
        prop_assert!(
            stats.failovers >= crashed.len() as u64,
            "a crashed host never failed over: {:?} under plan {:?}", stats, plan
        );
        prop_assert!(
            stats.failovers <= (crashed.len() + 2) as u64,
            "an outage failed over twice: {:?} under plan {:?}", stats, plan
        );
        prop_assert!(stats.leader_changes >= 1);

        // The schedule has fully drained: the spare host (at least) is
        // live, the leader is a survivor, and fresh work succeeds
        // bit-identically.
        prop_assert_eq!(fleet.live_hosts(), 3 - crashed.len());
        let leader = fleet.leader().unwrap().holder;
        prop_assert!(!crashed.contains(&leader), "dead leader {} still holds the lease", leader);
        let fresh = fleet.session().unwrap();
        match block_on_timeout(
            fresh.run(|client| Box::pin(async move { request(client, 8, 5.0).await })),
            Duration::from_secs(30),
        ) {
            Ok(Ok(v)) => prop_assert_eq!(v.to_bits(), reference_bits(8, 5.0)),
            Ok(Err(e)) => prop_assert!(false, "drained fleet failed: {:?}", e),
            Err(_) => prop_assert!(false, "drained fleet hung under plan {:?}", plan),
        }
    }

    /// Open-loop load over a seeded schedule: totals always reconcile
    /// (injected == completed + failed — the no-hang invariant at load),
    /// and the whole report replays bit-identically from the same seed.
    #[test]
    fn open_loop_fleet_runs_reconcile_and_replay(seed in 0u64..1_000) {
        let profile = HostFaultProfile {
            hosts: 3,
            single_host: None,
            crashes: 1,
            stalls: 1,
            partitions: 1,
            max_outage_cycles: 40_000,
            cycle_horizon: 250_000,
            spare_host: Some(2),
        };
        let plan = HostFaultPlan::from_seed(seed, &profile);
        let make = || Fleet::new(fleet_cfg(3, plan.clone()));
        let cfg = open_loop_cfg(seed ^ 0x9E37);

        let a = run_fleet(&make().unwrap(), &cfg).unwrap();
        prop_assert_eq!(
            a.completed + a.failed, a.injected,
            "requests leaked under plan {:?}", plan
        );
        prop_assert!(
            a.fleet.failovers >= crashed_hosts(&plan).len() as u64,
            "{:?} under plan {:?}", a.fleet, plan
        );

        let b = run_fleet(&make().unwrap(), &cfg).unwrap();
        prop_assert_eq!(a.end_cycle, b.end_cycle, "plan {:?}", plan);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.failed, b.failed);
        prop_assert_eq!(a.reissued, b.reissued);
        prop_assert_eq!(&a.windows, &b.windows);
    }
}
