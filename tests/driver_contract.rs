//! Cross-layer contracts: the simulator is a drop-in chip replacement
//! (§VI), so driving it through the *encoded wire format* must equal
//! driving it through structured micro-operations; strict mode must catch
//! protocol violations; and the driver/simulator cycle accounting must
//! agree.

use pypim::arch::{encode, Backend, GateKind, HLogic, MicroOp, PimConfig};
use pypim::driver::{routines, Driver, ParallelismMode};
use pypim::isa::{DType, Instruction, RegOp, ThreadRange};
use pypim::sim::PimSimulator;

#[test]
fn encoded_stream_equals_structured_execution() {
    // Compile a real routine, run it once as structured ops and once as
    // encoded 64-bit words through Backend::stream (which decodes), and
    // compare the full memory state.
    let cfg = PimConfig::small().with_crossbars(2).with_rows(8);
    let routine = routines::compile_rtype(
        &cfg,
        ParallelismMode::BitSerial,
        RegOp::Mul,
        DType::Int32,
        2,
        &[0, 1],
    )
    .unwrap();
    let mut a = PimSimulator::new(cfg.clone()).unwrap();
    let mut b = PimSimulator::new(cfg.clone()).unwrap();
    for sim in [&mut a, &mut b] {
        for xb in 0..cfg.crossbars {
            for row in 0..cfg.rows {
                sim.poke(xb, row, 0, (row * 31 + xb * 7) as u32);
                sim.poke(xb, row, 1, (row * 13 + 5) as u32);
            }
        }
    }
    a.execute_batch(&routine.ops).unwrap();
    let words = routine.encode_ops();
    b.stream(&words).unwrap();
    for xb in 0..cfg.crossbars {
        for row in 0..cfg.rows {
            for reg in 0..cfg.regs {
                assert_eq!(
                    a.peek(xb, row, reg),
                    b.peek(xb, row, reg),
                    "state diverged at xb {xb} row {row} reg {reg}"
                );
            }
        }
    }
    // And the result is correct.
    assert_eq!(a.peek(0, 3, 2), (3u32 * 31).wrapping_mul(3 * 13 + 5));
}

#[test]
fn every_routine_op_roundtrips_the_wire_format() {
    let cfg = PimConfig::small();
    for (op, dtype) in [
        (RegOp::Add, DType::Float32),
        (RegOp::Div, DType::Float32),
        (RegOp::Div, DType::Int32),
        (RegOp::Mux, DType::Int32),
    ] {
        let routine = routines::compile_rtype(
            &cfg,
            ParallelismMode::BitSerial,
            op,
            dtype,
            3,
            &[0, 1, 2][..op.arity()],
        )
        .unwrap();
        for mop in &routine.ops {
            let word = encode::encode(mop);
            assert_eq!(&encode::decode(word).unwrap(), mop, "round-trip of {mop:?}");
        }
    }
}

#[test]
fn strict_mode_catches_missing_initialization() {
    let cfg = PimConfig::small();
    let mut sim = PimSimulator::new(cfg.clone()).unwrap();
    // Put a 1 somewhere and NOR into an uninitialized register.
    sim.execute(&MicroOp::Write {
        index: 0,
        value: u32::MAX,
    })
    .unwrap();
    let bad = MicroOp::LogicH(HLogic::parallel(GateKind::Nor, 0, 0, 5, &cfg).unwrap());
    let err = sim.execute(&bad).unwrap_err();
    assert!(err.to_string().contains("initialized"), "{err}");
    // After an INIT1 the same gate succeeds.
    sim.execute(&MicroOp::LogicH(HLogic::init_reg(true, 5, &cfg).unwrap()))
        .unwrap();
    sim.execute(&bad).unwrap();
    assert_eq!(sim.peek(0, 0, 5), 0);
}

#[test]
fn compiled_routines_respect_the_stateful_discipline() {
    // Strict mode stays on while executing every routine over random data:
    // any missing initialization in the gate-level compiler would abort.
    let cfg = PimConfig::small().with_crossbars(1).with_rows(4);
    let mut driver = Driver::with_mode(
        PimSimulator::new(cfg.clone()).unwrap(),
        ParallelismMode::BitSerial,
    );
    assert!(driver.backend().strict());
    let all = ThreadRange::all(&cfg);
    driver
        .execute(&Instruction::Write {
            reg: 0,
            value: 0xDEAD_BEEF,
            target: all,
        })
        .unwrap();
    driver
        .execute(&Instruction::Write {
            reg: 1,
            value: 0x0BAD_F00D,
            target: all,
        })
        .unwrap();
    driver
        .execute(&Instruction::Write {
            reg: 2,
            value: 3,
            target: all,
        })
        .unwrap();
    for op in RegOp::ALL {
        for dtype in DType::ALL {
            if !op.supports(dtype) {
                continue;
            }
            driver
                .execute(&Instruction::RType {
                    op,
                    dtype,
                    dst: 3,
                    srcs: [0, 1, 2],
                    target: all,
                })
                .unwrap_or_else(|e| panic!("{op}/{dtype} violated the discipline: {e}"));
        }
    }
}

#[test]
fn driver_issued_total_matches_simulator_cycles() {
    let cfg = PimConfig::small().with_crossbars(4).with_rows(16);
    let mut driver = Driver::new(PimSimulator::new(cfg.clone()).unwrap());
    let all = ThreadRange::all(&cfg);
    driver
        .execute(&Instruction::Write {
            reg: 0,
            value: 7,
            target: all,
        })
        .unwrap();
    driver
        .execute(&Instruction::Write {
            reg: 1,
            value: 9,
            target: all,
        })
        .unwrap();
    for op in [RegOp::Add, RegOp::Mul, RegOp::Xor, RegOp::Lt] {
        driver
            .execute(&Instruction::RType {
                op,
                dtype: DType::Int32,
                dst: 2,
                srcs: [0, 1, 0],
                target: all,
            })
            .unwrap();
    }
    // No serialized moves in this program: driver accounting equals the
    // simulator's measured cycles exactly.
    assert_eq!(driver.issued().total, driver.backend().profiler().cycles);
}

#[test]
fn mask_elision_is_transparent() {
    // Repeated instructions over the same thread range skip redundant mask
    // micro-operations without changing results.
    let cfg = PimConfig::small().with_crossbars(2).with_rows(8);
    let mut driver = Driver::new(PimSimulator::new(cfg.clone()).unwrap());
    let all = ThreadRange::all(&cfg);
    driver
        .execute(&Instruction::Write {
            reg: 0,
            value: 5,
            target: all,
        })
        .unwrap();
    driver
        .execute(&Instruction::Write {
            reg: 1,
            value: 6,
            target: all,
        })
        .unwrap();
    let add = Instruction::RType {
        op: RegOp::Add,
        dtype: DType::Int32,
        dst: 2,
        srcs: [0, 1, 0],
        target: all,
    };
    driver.execute(&add).unwrap();
    let masks_before = driver.backend().profiler().ops.xb_mask;
    driver.execute(&add).unwrap();
    let masks_after = driver.backend().profiler().ops.xb_mask;
    assert_eq!(
        masks_before, masks_after,
        "same-range repeat should elide masks"
    );
    assert_eq!(
        driver
            .execute(&Instruction::Read {
                reg: 2,
                warp: 1,
                row: 7
            })
            .unwrap(),
        Some(11)
    );
}

#[test]
fn scratch_register_contract() {
    // Routines only touch ISA registers they were compiled for, plus the
    // driver-reserved scratch area — user registers other than the
    // destination survive every operation.
    let cfg = PimConfig::small().with_crossbars(1).with_rows(4);
    let mut driver = Driver::new(PimSimulator::new(cfg.clone()).unwrap());
    let all = ThreadRange::all(&cfg);
    for reg in 0..cfg.user_regs as u8 {
        driver
            .execute(&Instruction::Write {
                reg,
                value: 0x1000 + reg as u32,
                target: all,
            })
            .unwrap();
    }
    driver
        .execute(&Instruction::RType {
            op: RegOp::Div,
            dtype: DType::Float32,
            dst: 5,
            srcs: [0, 1, 0],
            target: all,
        })
        .unwrap();
    for reg in 0..cfg.user_regs as u8 {
        if reg == 5 {
            continue;
        }
        let got = driver
            .execute(&Instruction::Read {
                reg,
                warp: 0,
                row: 2,
            })
            .unwrap();
        assert_eq!(
            got,
            Some(0x1000 + reg as u32),
            "register {reg} was clobbered"
        );
    }
}

#[test]
fn streamed_execution_matches_structured_on_the_simulator() {
    // Driver::execute_streamed sends cached pre-encoded words; through the
    // simulator's default stream (decode + execute) it must produce the
    // same memory state and answers as the structured path.
    let cfg = PimConfig::small().with_crossbars(2).with_rows(8);
    let all = ThreadRange::all(&cfg);
    let program = [
        Instruction::Write {
            reg: 0,
            value: 0x7FFF_0003,
            target: all,
        },
        Instruction::Write {
            reg: 1,
            value: 19,
            target: all,
        },
        Instruction::RType {
            op: RegOp::Mul,
            dtype: DType::Int32,
            dst: 2,
            srcs: [0, 1, 0],
            target: all,
        },
        Instruction::RType {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst: 3,
            srcs: [2, 1, 0],
            target: all,
        },
    ];
    let mut structured = Driver::new(PimSimulator::new(cfg.clone()).unwrap());
    let mut streamed = Driver::new(PimSimulator::new(cfg.clone()).unwrap());
    for instr in &program {
        structured.execute(instr).unwrap();
        streamed.execute_streamed(instr).unwrap();
        // Repeat through the cached-words fast path too.
        streamed.execute_streamed(instr).unwrap();
    }
    let expect = 0x7FFF_0003u32.wrapping_mul(19).wrapping_add(19);
    for d in [&mut structured, &mut streamed] {
        assert_eq!(
            d.execute(&Instruction::Read {
                reg: 3,
                warp: 1,
                row: 5
            })
            .unwrap(),
            Some(expect)
        );
    }
    for xb in 0..cfg.crossbars {
        for row in 0..cfg.rows {
            for reg in 0..cfg.regs {
                assert_eq!(
                    structured.backend().peek(xb, row, reg),
                    streamed.backend().peek(xb, row, reg),
                    "xb {xb} row {row} reg {reg}"
                );
            }
        }
    }
}
