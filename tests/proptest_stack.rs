//! Property-based tests over the whole stack: random programs of tensor
//! operations executed on the bit-accurate simulator (strict mode) must
//! match a host-side shadow interpreter bit-for-bit.

use proptest::prelude::*;
use pypim::{Device, PimConfig, RegOp};

fn device() -> Device {
    Device::new(PimConfig::small().with_crossbars(2).with_rows(8)).unwrap()
}

fn apply_int(op: RegOp, a: i32, b: i32) -> i32 {
    match op {
        RegOp::Add => a.wrapping_add(b),
        RegOp::Sub => a.wrapping_sub(b),
        RegOp::Mul => a.wrapping_mul(b),
        RegOp::And => a & b,
        RegOp::Or => a | b,
        RegOp::Xor => a ^ b,
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random binary-op chains on int tensors match the host.
    #[test]
    fn int_op_chains_match(
        a in proptest::collection::vec(any::<i32>(), 6),
        b in proptest::collection::vec(any::<i32>(), 6),
        ops in proptest::collection::vec(0usize..6, 1..5),
    ) {
        let table = [RegOp::Add, RegOp::Sub, RegOp::Mul, RegOp::And, RegOp::Or, RegOp::Xor];
        let dev = device();
        let mut t = dev.from_slice_i32(&a).unwrap();
        let rhs = dev.from_slice_i32(&b).unwrap();
        let mut shadow = a.clone();
        for &o in &ops {
            let op = table[o];
            t = t.binary(op, &rhs).unwrap();
            for i in 0..shadow.len() {
                shadow[i] = apply_int(op, shadow[i], b[i]);
            }
        }
        prop_assert_eq!(t.to_vec_i32().unwrap(), shadow);
    }

    /// Float add/mul on arbitrary bit patterns matches IEEE bit-for-bit
    /// through the whole stack.
    #[test]
    fn float_ops_match_ieee(
        a_bits in proptest::collection::vec(any::<u32>(), 8),
        b_bits in proptest::collection::vec(any::<u32>(), 8),
        which in 0usize..4,
    ) {
        let op = [RegOp::Add, RegOp::Sub, RegOp::Mul, RegOp::Div][which];
        let native: fn(f32, f32) -> f32 = match op {
            RegOp::Add => |x, y| x + y,
            RegOp::Sub => |x, y| x - y,
            RegOp::Mul => |x, y| x * y,
            _ => |x, y| x / y,
        };
        let av: Vec<f32> = a_bits.iter().map(|&x| f32::from_bits(x)).collect();
        let bv: Vec<f32> = b_bits.iter().map(|&x| f32::from_bits(x)).collect();
        let dev = device();
        let a = dev.from_slice_f32(&av).unwrap();
        let b = dev.from_slice_f32(&bv).unwrap();
        let got = a.binary(op, &b).unwrap().to_vec_f32().unwrap();
        for i in 0..8 {
            let expect = native(av[i], bv[i]);
            if expect.is_nan() {
                prop_assert!(got[i].is_nan(), "{op}({:#x}, {:#x})", a_bits[i], b_bits[i]);
            } else {
                prop_assert_eq!(got[i].to_bits(), expect.to_bits(),
                    "{}({:#x}, {:#x})", op, a_bits[i], b_bits[i]);
            }
        }
    }

    /// Slicing a tensor and reading it back equals slicing the host vector.
    #[test]
    fn slices_match_host(
        vals in proptest::collection::vec(any::<i32>(), 1..16),
        start in 0usize..8,
        extra in 1usize..16,
        step in 1usize..5,
    ) {
        let dev = device();
        let t = dev.from_slice_i32(&vals).unwrap();
        let stop = start + extra;
        let host: Vec<i32> =
            vals.iter().copied().skip(start).take(stop.min(vals.len()).saturating_sub(start))
                .step_by(step).collect();
        match t.slice_step(start, stop, step) {
            Ok(v) => prop_assert_eq!(v.to_vec_i32().unwrap(), host),
            Err(_) => prop_assert!(host.is_empty()),
        }
    }

    /// Sorting matches the host sort for arbitrary finite floats.
    #[test]
    fn sort_matches_host(vals in proptest::collection::vec(-1000.0f32..1000.0, 1..14)) {
        let dev = device();
        let t = dev.from_slice_f32(&vals).unwrap();
        let got = t.sorted().unwrap().to_vec_f32().unwrap();
        let mut expect = vals.clone();
        expect.sort_by(f32::total_cmp);
        prop_assert_eq!(got, expect);
    }

    /// Int summation matches the host tree exactly (wrapping).
    #[test]
    fn int_sum_matches_host(vals in proptest::collection::vec(any::<i32>(), 1..16)) {
        let dev = device();
        let t = dev.from_slice_i32(&vals).unwrap();
        let mut tree = vals.clone();
        tree.resize(vals.len().next_power_of_two(), 0);
        while tree.len() > 1 {
            let half = tree.len() / 2;
            tree = (0..half).map(|i| tree[i].wrapping_add(tree[i + half])).collect();
        }
        prop_assert_eq!(t.sum_i32().unwrap(), tree[0]);
    }

    /// Select routes bits per element without corruption.
    #[test]
    fn select_matches_host(
        c in proptest::collection::vec(any::<i32>(), 6),
        a in proptest::collection::vec(any::<u32>(), 6),
        b in proptest::collection::vec(any::<u32>(), 6),
    ) {
        let dev = device();
        let cond = dev.from_slice_i32(&c).unwrap();
        let at = dev.from_slice_f32(&a.iter().map(|&x| f32::from_bits(x)).collect::<Vec<_>>()).unwrap();
        let bt = dev.from_slice_f32(&b.iter().map(|&x| f32::from_bits(x)).collect::<Vec<_>>()).unwrap();
        let got = cond.select(&at, &bt).unwrap();
        for i in 0..6 {
            let expect = if c[i] != 0 { a[i] } else { b[i] };
            prop_assert_eq!(got.get_raw(i).unwrap(), expect);
        }
    }
}
