//! The `tests/reduction.py` analog (§VI-A "Reduction"): logarithmic-time
//! summation and multiplication reductions over random tensors, including
//! sizes that are not powers of two, views, and multi-warp tensors — all
//! validated against a host-side reference applying the *same* pairwise
//! tree (float arithmetic is not associative, so the oracle mirrors the
//! reduction order).

use pypim::{Device, PimConfig};
use rand::{Rng, SeedableRng};

fn device() -> Device {
    Device::new(PimConfig::small().with_crossbars(8).with_rows(16)).unwrap()
}

/// Host reference: the same padded pairwise halving the PIM reduction uses.
fn tree_reduce_f32(vals: &[f32], identity: f32, op: impl Fn(f32, f32) -> f32) -> f32 {
    let mut t: Vec<f32> = vals.to_vec();
    t.resize(vals.len().next_power_of_two(), identity);
    while t.len() > 1 {
        let half = t.len() / 2;
        t = (0..half).map(|i| op(t[i], t[i + half])).collect();
    }
    t[0]
}

fn tree_reduce_i32(vals: &[i32], identity: i32, op: impl Fn(i32, i32) -> i32) -> i32 {
    let mut t: Vec<i32> = vals.to_vec();
    t.resize(vals.len().next_power_of_two(), identity);
    while t.len() > 1 {
        let half = t.len() / 2;
        t = (0..half).map(|i| op(t[i], t[i + half])).collect();
    }
    t[0]
}

#[test]
fn float_sum_various_sizes() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(42);
    for n in [1usize, 2, 3, 7, 16, 33, 100, 128] {
        let vals: Vec<f32> = (0..n).map(|_| r.gen_range(-100.0f32..100.0)).collect();
        let t = dev.from_slice_f32(&vals).unwrap();
        let got = t.sum_f32().unwrap();
        let expect = tree_reduce_f32(&vals, 0.0, |a, b| a + b);
        assert_eq!(got.to_bits(), expect.to_bits(), "sum of {n} elements");
    }
}

#[test]
fn float_product_various_sizes() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(43);
    for n in [2usize, 5, 16, 31, 64] {
        let vals: Vec<f32> = (0..n).map(|_| r.gen_range(0.8f32..1.2)).collect();
        let t = dev.from_slice_f32(&vals).unwrap();
        let got = t.prod_f32().unwrap();
        let expect = tree_reduce_f32(&vals, 1.0, |a, b| a * b);
        assert_eq!(got.to_bits(), expect.to_bits(), "product of {n} elements");
    }
}

#[test]
fn int_sum_and_product() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(44);
    for n in [1usize, 4, 10, 64, 100] {
        let vals: Vec<i32> = (0..n).map(|_| r.gen_range(-1000..1000)).collect();
        let t = dev.from_slice_i32(&vals).unwrap();
        assert_eq!(
            t.sum_i32().unwrap(),
            tree_reduce_i32(&vals, 0, |a, b| a.wrapping_add(b)),
            "int sum of {n}"
        );
        assert_eq!(
            t.prod_i32().unwrap(),
            tree_reduce_i32(&vals, 1, |a, b| a.wrapping_mul(b)),
            "int product of {n}"
        );
    }
}

#[test]
fn reduction_over_views() {
    // Figure 12's z[::2].sum(): reduce a strided view.
    let dev = device();
    let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let t = dev.from_slice_f32(&vals).unwrap();
    let evens = t.even().unwrap();
    let got = evens.sum_f32().unwrap();
    let expect: f32 = {
        let ev: Vec<f32> = vals.iter().copied().step_by(2).collect();
        tree_reduce_f32(&ev, 0.0, |a, b| a + b)
    };
    assert_eq!(got, expect);
    // Odd view.
    let odds = t.odd().unwrap();
    let expect_odd = {
        let ov: Vec<f32> = vals.iter().copied().skip(1).step_by(2).collect();
        tree_reduce_f32(&ov, 0.0, |a, b| a + b)
    };
    assert_eq!(odds.sum_f32().unwrap(), expect_odd);
    // Sub-range view.
    let mid = t.slice(10, 30).unwrap();
    let expect_mid = tree_reduce_f32(&vals[10..30], 0.0, |a, b| a + b);
    assert_eq!(mid.sum_f32().unwrap(), expect_mid);
}

#[test]
fn multi_warp_reduction_uses_htree() {
    // A tensor spanning all 8 warps: the first reduction levels must move
    // data between crossbars (distributed H-tree moves).
    let dev = device();
    let n = 8 * 16; // all threads
    let vals: Vec<f32> = (0..n).map(|i| (i % 17) as f32 - 8.0).collect();
    let t = dev.from_slice_f32(&vals).unwrap();
    dev.reset_counters().unwrap();
    let got = t.sum_f32().unwrap();
    let expect = tree_reduce_f32(&vals, 0.0, |a, b| a + b);
    assert_eq!(got.to_bits(), expect.to_bits());
    let p = dev.profiler().unwrap();
    assert!(
        p.ops.mv > 0,
        "multi-warp reduction must issue inter-crossbar moves"
    );
    assert!(p.move_pairs > 0);
}

#[test]
fn reduction_cycles_scale_logarithmically() {
    // Doubling the element count (within one warp's rows) adds one level:
    // cycles grow far slower than linearly.
    let dev = Device::new(PimConfig::small().with_crossbars(1).with_rows(64)).unwrap();
    let mut cycles = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let t = dev.from_slice_f32(&vals).unwrap();
        dev.reset_counters().unwrap();
        t.sum_f32().unwrap();
        cycles.push(dev.cycles().unwrap());
    }
    // 8x the elements must cost far less than 8x the cycles.
    assert!(
        cycles[3] < 4 * cycles[0],
        "log-reduction scaling violated: {cycles:?}"
    );
}
