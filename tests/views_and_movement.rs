//! Tensor views and the automatic move-based alignment of §V-A: slicing
//! semantics, operations between misaligned views (the library's fall-back
//! copy), shifted materialization, and the memory manager's alignment
//! behavior.

use pypim::{copy, materialize_like, shifted, Device, PimConfig};

fn device() -> Device {
    Device::new(PimConfig::small().with_crossbars(4).with_rows(16)).unwrap()
}

#[test]
fn slice_semantics_match_python() {
    let dev = device();
    let vals: Vec<i32> = (0..20).collect();
    let t = dev.from_slice_i32(&vals).unwrap();
    // x[3:17:4]
    let v = t.slice_step(3, 17, 4).unwrap();
    assert_eq!(v.to_vec_i32().unwrap(), vec![3, 7, 11, 15]);
    // Slice of a slice: x[2::2][1::3]
    let v2 = t.slice_step(2, 20, 2).unwrap().slice_step(1, 9, 3).unwrap();
    assert_eq!(v2.to_vec_i32().unwrap(), vec![4, 10, 16]);
    // stop clamps to the length.
    let v3 = t.slice_step(18, 99, 1).unwrap();
    assert_eq!(v3.to_vec_i32().unwrap(), vec![18, 19]);
    // Empty slices error.
    assert!(t.slice(5, 5).is_err());
    assert!(t.slice_step(0, 10, 0).is_err());
}

#[test]
fn writes_through_views_hit_the_base() {
    let dev = device();
    let mut t = dev.zeros_i32(16).unwrap();
    let mut view = t.slice_step(1, 16, 2).unwrap(); // odd indices
    for i in 0..view.len() {
        view.set_i32(i, 100 + i as i32).unwrap();
    }
    let base = t.to_vec_i32().unwrap();
    for i in 0..16 {
        let expect = if i % 2 == 1 { 100 + (i - 1) / 2 } else { 0 };
        assert_eq!(base[i as usize], expect, "index {i}");
    }
    // And a direct write through the base is visible in the view.
    t.set_i32(3, -7).unwrap();
    assert_eq!(view.get_i32(1).unwrap(), -7);
}

#[test]
fn misaligned_views_fall_back_to_copies() {
    // x[::2] + x[1::2]: the operands live in the same register at
    // different rows, so the library must move one next to the other.
    let dev = device();
    let vals: Vec<f32> = (0..32).map(|i| i as f32).collect();
    let x = dev.from_slice_f32(&vals).unwrap();
    let sum = (&x.even().unwrap() + &x.odd().unwrap()).unwrap();
    let got = sum.to_vec_f32().unwrap();
    for (i, &v) in got.iter().enumerate() {
        assert_eq!(v, (2 * i + 2 * i + 1) as f32, "pair {i}");
    }
}

#[test]
fn operations_between_different_allocations() {
    // Tensors allocated at different times share the warp window thanks to
    // the malloc alignment policy — but force a misalignment via slicing.
    let dev = device();
    let a = dev.from_slice_i32(&(0..24).collect::<Vec<_>>()).unwrap();
    let b = dev.from_slice_i32(&(100..124).collect::<Vec<_>>()).unwrap();
    let shifted_view = b.slice(4, 20).unwrap(); // offset 4: misaligned
    let head = a.slice(0, 16).unwrap();
    let sum = (&head + &shifted_view).unwrap().to_vec_i32().unwrap();
    for (i, &v) in sum.iter().enumerate() {
        assert_eq!(v, i as i32 + 104 + i as i32);
    }
}

#[test]
fn copy_between_arbitrary_views() {
    let dev = device();
    let src_vals: Vec<i32> = (0..12).map(|i| i * 11).collect();
    let src = dev.from_slice_i32(&src_vals).unwrap();
    let dst = dev.zeros_i32(40).unwrap();
    // Copy into a strided destination view.
    let dst_view = dst.slice_step(2, 26, 2).unwrap();
    copy(&src, &dst_view).unwrap();
    let out = dst.to_vec_i32().unwrap();
    for i in 0..12 {
        assert_eq!(out[2 + 2 * i], src_vals[i], "element {i}");
    }
    assert_eq!(out[0], 0);
    assert_eq!(out[3], 0);
}

#[test]
fn materialize_like_aligns_threads() {
    let dev = device();
    let a = dev.from_slice_i32(&(0..16).collect::<Vec<_>>()).unwrap();
    let b = dev.from_slice_i32(&(50..66).collect::<Vec<_>>()).unwrap();
    let b_shift = b.slice(1, 13).unwrap();
    let a_head = a.slice(0, 12).unwrap();
    let m = materialize_like(&b_shift, &a_head).unwrap();
    assert_eq!(m.to_vec_i32().unwrap(), (51..63).collect::<Vec<_>>());
    // Now the two are directly operable.
    let s = (&a_head + &m).unwrap().to_vec_i32().unwrap();
    for (i, &v) in s.iter().enumerate() {
        assert_eq!(v, i as i32 + 51 + i as i32);
    }
}

#[test]
fn shifted_materialization() {
    let dev = device();
    let vals: Vec<i32> = (0..48).collect(); // spans 3 warps of 16 rows
    let t = dev.from_slice_i32(&vals).unwrap();
    for dist in [1i64, -1, 5, -5, 16, -16, 20, -20, 47] {
        let s = shifted(&t, dist).unwrap();
        let out = s.to_vec_i32().unwrap();
        for i in 0..48i64 {
            let j = i + dist;
            if (0..48).contains(&j) {
                assert_eq!(out[i as usize], j as i32, "dist {dist}, index {i}");
            }
        }
    }
}

#[test]
fn allocation_alignment_avoids_copies() {
    // Consecutive allocations of equal size share a warp window, so binary
    // operations issue no move micro-operations.
    let dev = device();
    let a = dev.from_slice_i32(&(0..32).collect::<Vec<_>>()).unwrap();
    let b = dev
        .from_slice_i32(&(0..32).map(|i| i * 2).collect::<Vec<_>>())
        .unwrap();
    dev.reset_counters().unwrap();
    let _ = (&a + &b).unwrap();
    let p = dev.profiler().unwrap();
    assert_eq!(p.ops.mv, 0, "aligned operands should not move data");
    assert_eq!(p.ops.logic_v, 0);
}

#[test]
fn dropping_tensors_frees_memory() {
    let dev = device(); // 4 warps x 16 user regs worth of stripes
                        // Exhaust the memory, drop, and re-allocate.
    let mut keep = Vec::new();
    for _ in 0..16 {
        keep.push(dev.zeros_i32(64).unwrap()); // 4 warps each: full stripe
    }
    assert!(dev.zeros_i32(1).is_err(), "memory should be exhausted");
    keep.truncate(8);
    for _ in 0..8 {
        keep.push(dev.zeros_i32(64).unwrap());
    }
    assert!(dev.zeros_i32(1).is_err());
}
