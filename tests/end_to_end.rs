//! End-to-end integration (§V-C): the paper's Figure 12 program, the
//! interactive artifact session (Appendix G), CORDIC trigonometry, the
//! profiler, the routine cache, and cross-mode consistency.

use pypim::{Device, ParallelismMode, PimConfig, Result, Tensor};

fn my_func(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    // return a * b + a
    &(a * b)? + a
}

#[test]
fn figure12_program() {
    let dev = Device::new(PimConfig::small()).unwrap();
    let n = 1024; // scaled-down 2^20
    let mut x = dev.zeros_f32(n).unwrap();
    let mut y = dev.zeros_f32(n).unwrap();
    x.set_f32(4, 8.0).unwrap();
    y.set_f32(4, 0.5).unwrap();
    x.set_f32(5, 20.0).unwrap();
    y.set_f32(5, 1.0).unwrap();
    x.set_f32(8, 10.0).unwrap();
    y.set_f32(8, 1.0).unwrap();
    let z = my_func(&x, &y).unwrap();
    assert_eq!(z.get_f32(4).unwrap(), 12.0); // 8*0.5 + 8
    assert_eq!(z.get_f32(5).unwrap(), 40.0); // 20*1 + 20
    assert_eq!(z.get_f32(8).unwrap(), 20.0); // 10*1 + 10
    assert_eq!(z.get_f32(0).unwrap(), 0.0);
    // print(z[::2].sum())  ->  32.0 = 8 * 1.5 + 10 * 2
    assert_eq!(z.slice_step(0, n, 2).unwrap().sum_f32().unwrap(), 32.0);
}

#[test]
fn appendix_interactive_session() {
    // >>> x = pim.zeros(8, dtype=pim.float32)
    let dev = Device::new(PimConfig::small()).unwrap();
    let mut x = dev.zeros_f32(8).unwrap();
    assert_eq!(x.to_vec_f32().unwrap(), vec![0.0; 8]);
    // >>> x[2] = 2.5; x[3] = 1.25; x[4] = 2.25
    x.set_f32(2, 2.5).unwrap();
    x.set_f32(3, 1.25).unwrap();
    x.set_f32(4, 2.25).unwrap();
    assert_eq!(
        x.to_vec_f32().unwrap(),
        vec![0.0, 0.0, 2.5, 1.25, 2.25, 0.0, 0.0, 0.0]
    );
    // >>> x[::2]
    let view = x.even().unwrap();
    assert_eq!(view.to_vec_f32().unwrap(), vec![0.0, 2.5, 2.25, 0.0]);
    // >>> x[::2].sum()  ->  4.75
    assert_eq!(view.sum_f32().unwrap(), 4.75);
    // >>> x[::2].sort()  ->  [0.0, 0.0, 2.25, 2.5]
    let mut view = x.even().unwrap();
    view.sort().unwrap();
    assert_eq!(view.to_vec_f32().unwrap(), vec![0.0, 0.0, 2.25, 2.5]);
    // Odd elements untouched.
    assert_eq!(x.get_f32(3).unwrap(), 1.25);
}

#[test]
fn cordic_sine_cosine_accuracy() {
    let dev = Device::new(PimConfig::small()).unwrap();
    let angles: Vec<f32> = (0..33).map(|i| -1.57 + 0.098 * i as f32).collect();
    let t = dev.from_slice_f32(&angles).unwrap();
    let (sin_t, cos_t) = t.sin_cos().unwrap();
    let sv = sin_t.to_vec_f32().unwrap();
    let cv = cos_t.to_vec_f32().unwrap();
    for (i, &a) in angles.iter().enumerate() {
        assert!(
            (sv[i] - a.sin()).abs() < 1e-5,
            "sin({a}) = {} (host {})",
            sv[i],
            a.sin()
        );
        assert!(
            (cv[i] - a.cos()).abs() < 1e-5,
            "cos({a}) = {} (host {})",
            cv[i],
            a.cos()
        );
    }
}

#[test]
fn profiler_reports_cycles_and_distance() {
    let dev = Device::new(PimConfig::small()).unwrap();
    let a = dev.full_i32(64, 3).unwrap();
    let b = dev.full_i32(64, 4).unwrap();
    dev.reset_counters().unwrap();
    let _ = (&a * &b).unwrap();
    let p = dev.profiler().unwrap();
    assert!(
        p.cycles > 5000,
        "int multiply should cost thousands of cycles"
    );
    assert_eq!(
        p.ops.total(),
        p.cycles,
        "1 cycle per micro-op when no moves serialize"
    );
    let issued = dev.issued().unwrap();
    assert!(issued.logic <= issued.total);
    assert_eq!(issued.total, p.cycles);
    // Measured within ~10% of the pure-logic bound for multiplication.
    assert!(
        issued.overhead_ratio() < 1.10,
        "ratio {}",
        issued.overhead_ratio()
    );
}

#[test]
fn routine_cache_hits_across_tensors() {
    let dev = Device::new(PimConfig::small()).unwrap();
    let a = dev.full_f32(32, 1.5).unwrap();
    let b = dev.full_f32(32, 2.0).unwrap();
    let _ = (&a + &b).unwrap();
    let (h0, m0) = dev.cache_stats().unwrap();
    // Same registers again: pure cache hit.
    let _ = (&a + &b).unwrap();
    let (h1, m1) = dev.cache_stats().unwrap();
    assert_eq!(m1, m0, "no new compilation expected");
    assert!(h1 > h0);
}

#[test]
fn both_parallelism_modes_agree() {
    for mode in [ParallelismMode::BitSerial, ParallelismMode::BitParallel] {
        let dev = Device::with_mode(PimConfig::small(), mode).unwrap();
        let a = dev.from_slice_i32(&[1, -5, 100, i32::MAX, -77, 0]).unwrap();
        let b = dev.from_slice_i32(&[9, 5, -100, 1, 77, 0]).unwrap();
        let sum = (&a + &b).unwrap().to_vec_i32().unwrap();
        assert_eq!(sum, vec![10, 0, 0, i32::MIN, 0, 0], "{mode:?}");
    }
}

#[test]
fn parallel_mode_is_faster() {
    let cycles = |mode| {
        let dev = Device::with_mode(PimConfig::small(), mode).unwrap();
        let a = dev.full_i32(64, 3).unwrap();
        let b = dev.full_i32(64, 4).unwrap();
        dev.reset_counters().unwrap();
        let _ = (&a + &b).unwrap();
        dev.cycles().unwrap()
    };
    let serial = cycles(ParallelismMode::BitSerial);
    let parallel = cycles(ParallelismMode::BitParallel);
    assert!(
        parallel * 3 < serial * 2,
        "partitions should speed addition up by >1.5x ({serial} vs {parallel})"
    );
}

#[test]
fn chained_expression_graph() {
    chained_expression_graph_impl().unwrap();
}

fn chained_expression_graph_impl() -> Result<()> {
    // A larger expression: ((a*b) + (c-d)) / (a + 1), element-wise.
    let dev = Device::new(PimConfig::small()).unwrap();
    let av = [1.5f32, -2.0, 1e10, 0.25];
    let bv = [2.0f32, 3.0, 1e-10, -8.0];
    let cv = [10.0f32, 0.5, 1.0, 2.0];
    let dv = [1.0f32, 0.25, -1.0, 6.5];
    let a = dev.from_slice_f32(&av).unwrap();
    let b = dev.from_slice_f32(&bv).unwrap();
    let c = dev.from_slice_f32(&cv).unwrap();
    let d = dev.from_slice_f32(&dv).unwrap();
    let out = (&(&(&a * &b)? + &(&c - &d)?)? / &(&a + 1.0f32)?)?;
    let got = out.to_vec_f32()?;
    for i in 0..4 {
        let expect = (av[i] * bv[i] + (cv[i] - dv[i])) / (av[i] + 1.0);
        assert_eq!(got[i].to_bits(), expect.to_bits(), "element {i}");
    }
    Ok(())
}

#[test]
fn errors_are_reported_not_panicked() {
    let dev = Device::new(PimConfig::small()).unwrap();
    let a = dev.zeros_f32(8).unwrap();
    let b = dev.zeros_f32(9).unwrap();
    assert!((&a + &b).is_err(), "shape mismatch");
    let i = dev.zeros_i32(8).unwrap();
    assert!((&a + &i).is_err(), "dtype mismatch");
    assert!(a.get_f32(8).is_err(), "index out of bounds");
    assert!(a.get_i32(0).is_err(), "dtype-checked accessor");
    let dev2 = Device::new(PimConfig::small()).unwrap();
    let c = dev2.zeros_f32(8).unwrap();
    assert!((&a + &c).is_err(), "device mismatch");
    // Modulo on floats is unsupported (Table II).
    assert!((&a % &a).is_err());
}
