//! General-purpose routines beyond the paper's benchmark list: prefix scans
//! (Hillis–Steele cumulative sum/product) and min/max — both element-wise
//! and as logarithmic reductions — validated against host references that
//! mirror the in-memory combine order.

use pypim::{Device, PimConfig};
use rand::{Rng, SeedableRng};

fn device() -> Device {
    Device::new(PimConfig::small().with_crossbars(4).with_rows(16)).unwrap()
}

/// Host Hillis–Steele scan (same combine order as the PIM implementation —
/// float addition is not associative).
fn hillis_steele_f32(vals: &[f32], op: impl Fn(f32, f32) -> f32, identity: f32) -> Vec<f32> {
    let n = vals.len();
    let mut t = vals.to_vec();
    let mut d = 1;
    while d < n {
        let prev: Vec<f32> = (0..n)
            .map(|i| if i >= d { t[i - d] } else { identity })
            .collect();
        t = (0..n).map(|i| op(t[i], prev[i])).collect();
        d *= 2;
    }
    t
}

#[test]
fn cumsum_int_matches() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    for n in [1usize, 2, 7, 16, 33, 64] {
        let vals: Vec<i32> = (0..n).map(|_| r.gen_range(-100..100)).collect();
        let t = dev.from_slice_i32(&vals).unwrap();
        let got = t.cumsum().unwrap().to_vec_i32().unwrap();
        let mut acc = 0i32;
        let expect: Vec<i32> = vals
            .iter()
            .map(|&v| {
                acc = acc.wrapping_add(v);
                acc
            })
            .collect();
        assert_eq!(got, expect, "cumsum of {n} ints");
    }
}

#[test]
fn cumsum_float_matches_hillis_steele_order() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(2);
    for n in [3usize, 8, 21, 48] {
        let vals: Vec<f32> = (0..n).map(|_| r.gen_range(-10.0f32..10.0)).collect();
        let t = dev.from_slice_f32(&vals).unwrap();
        let got = t.cumsum().unwrap().to_vec_f32().unwrap();
        let expect = hillis_steele_f32(&vals, |a, b| a + b, 0.0);
        for i in 0..n {
            assert_eq!(got[i].to_bits(), expect[i].to_bits(), "cumsum[{i}] of {n}");
        }
    }
}

#[test]
fn cumprod_matches() {
    let dev = device();
    let vals = vec![1.5f32, 2.0, 0.5, -3.0, 1.25, 0.0, 7.0];
    let t = dev.from_slice_f32(&vals).unwrap();
    let got = t.cumprod().unwrap().to_vec_f32().unwrap();
    let expect = hillis_steele_f32(&vals, |a, b| a * b, 1.0);
    for i in 0..vals.len() {
        assert_eq!(got[i].to_bits(), expect[i].to_bits(), "cumprod[{i}]");
    }
}

#[test]
fn cumsum_over_view() {
    let dev = device();
    let vals: Vec<i32> = (1..=16).collect();
    let t = dev.from_slice_i32(&vals).unwrap();
    let got = t.even().unwrap().cumsum().unwrap().to_vec_i32().unwrap();
    // Even-index values: 1, 3, 5, ... 15 -> prefix sums.
    assert_eq!(got, vec![1, 4, 9, 16, 25, 36, 49, 64]);
}

#[test]
fn elementwise_min_max() {
    let dev = device();
    let av = vec![1.0f32, -2.0, 5.5, 0.0, -0.0, 9.0];
    let bv = vec![2.0f32, -3.0, 5.5, -0.0, 0.0, -9.0];
    let a = dev.from_slice_f32(&av).unwrap();
    let b = dev.from_slice_f32(&bv).unwrap();
    let mx = a.max_elem(&b).unwrap().to_vec_f32().unwrap();
    let mn = a.min_elem(&b).unwrap().to_vec_f32().unwrap();
    for i in 0..av.len() {
        assert_eq!(mx[i], av[i].max(bv[i]), "max[{i}]");
        assert_eq!(mn[i], av[i].min(bv[i]), "min[{i}]");
    }
}

#[test]
fn minmax_reductions() {
    let dev = device();
    let mut r = rand::rngs::StdRng::seed_from_u64(3);
    for n in [1usize, 5, 17, 64] {
        let fv: Vec<f32> = (0..n).map(|_| r.gen_range(-1e6f32..1e6)).collect();
        let t = dev.from_slice_f32(&fv).unwrap();
        let expect_max = fv.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let expect_min = fv.iter().copied().fold(f32::INFINITY, f32::min);
        assert_eq!(t.max_f32().unwrap(), expect_max, "max of {n}");
        assert_eq!(t.min_f32().unwrap(), expect_min, "min of {n}");

        let iv: Vec<i32> = (0..n).map(|_| r.gen()).collect();
        let t = dev.from_slice_i32(&iv).unwrap();
        assert_eq!(
            t.max_i32().unwrap(),
            *iv.iter().max().unwrap(),
            "int max of {n}"
        );
        assert_eq!(
            t.min_i32().unwrap(),
            *iv.iter().min().unwrap(),
            "int min of {n}"
        );
    }
}

#[test]
fn minmax_with_extremes() {
    let dev = device();
    let vals = vec![f32::NEG_INFINITY, 3.0, f32::INFINITY, -7.5];
    let t = dev.from_slice_f32(&vals).unwrap();
    assert_eq!(t.max_f32().unwrap(), f32::INFINITY);
    assert_eq!(t.min_f32().unwrap(), f32::NEG_INFINITY);
    let t = dev.from_slice_i32(&[i32::MIN, 0, i32::MAX]).unwrap();
    assert_eq!(t.max_i32().unwrap(), i32::MAX);
    assert_eq!(t.min_i32().unwrap(), i32::MIN);
}

#[test]
fn fill_through_views() {
    let dev = device();
    let t = dev.zeros_i32(12).unwrap();
    t.slice_step(1, 12, 3).unwrap().fill_i32(7).unwrap();
    assert_eq!(
        t.to_vec_i32().unwrap(),
        vec![0, 7, 0, 0, 7, 0, 0, 7, 0, 0, 7, 0]
    );
    let f = dev.zeros_f32(4).unwrap();
    f.fill_f32(2.5).unwrap();
    assert_eq!(f.to_vec_f32().unwrap(), vec![2.5; 4]);
}
