//! Backend equivalence: the vectorized functional backend (`pim-func`)
//! must be indistinguishable from the bit-accurate simulator through every
//! layer of the stack — identical tensor-program results *and* identical
//! modeled-cycle totals, on a single chip, on uniform clusters of either
//! backend, and on a mixed cluster where some shards are bit-accurate and
//! others functional. The functional backend shares the simulator's cost
//! model (`pim_sim::charge_op`), so any divergence in `Device::cycles`
//! is a bug, not a modeling choice.

use futures::executor::block_on;
use pypim::serve::{ClusterClient, DeviceServeExt, ServeConfig};
use pypim::{BackendKind, ClusterOptions, Device, PimConfig, RegOp, Result, ShardBackends, Tensor};

/// Single chip, bit-accurate: 16 crossbars x 64 rows.
fn sim_single() -> Device {
    Device::new(PimConfig::small()).unwrap()
}

/// Single chip, functional backend, same geometry.
fn func_single() -> Device {
    Device::with_backend(PimConfig::small(), BackendKind::Functional).unwrap()
}

/// Four chips of 4 crossbars with the given per-shard backends — the same
/// 16-warp logical geometry as the single-chip devices.
fn cluster(backends: ShardBackends) -> Device {
    Device::cluster_with_options(
        PimConfig::small().with_crossbars(4),
        4,
        ClusterOptions {
            backends,
            ..ClusterOptions::default()
        },
    )
    .unwrap()
}

/// All five topologies under test: the two single-chip backends, the two
/// uniform clusters, and a mixed cluster alternating backends per shard.
fn devices() -> Vec<(&'static str, Device)> {
    vec![
        ("sim-single", sim_single()),
        ("func-single", func_single()),
        (
            "sim-cluster",
            cluster(ShardBackends::Uniform(BackendKind::BitAccurate)),
        ),
        (
            "func-cluster",
            cluster(ShardBackends::Uniform(BackendKind::Functional)),
        ),
        (
            "mixed-cluster",
            cluster(ShardBackends::PerShard(vec![
                BackendKind::BitAccurate,
                BackendKind::Functional,
                BackendKind::Functional,
                BackendKind::BitAccurate,
            ])),
        ),
    ]
}

fn float_inputs(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| match i % 7 {
            0 => 0.1 + i as f32,
            1 => -3.75e-3 * i as f32,
            2 => 1.0e-40, // subnormal
            3 => 3.4e37,
            4 => -0.0,
            5 => -7.25e-9 * i as f32,
            _ => (i as f32).sin() * 100.0,
        })
        .collect()
}

fn int_inputs(n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| (i as i32).wrapping_mul(0x9E37_79B9u32 as i32) ^ (i as i32) << 7)
        .collect()
}

/// Runs `program` on every topology. Results must be bit-identical across
/// all five; modeled-cycle totals must be identical across topologies with
/// the same shape (single vs single, and all three clusters — a cluster's
/// `cycles` is its busiest shard, so single and cluster totals differ by
/// design, but the backend must never change them).
fn assert_backend_equivalent(program: impl Fn(&Device) -> Result<Vec<u32>>) {
    let mut outputs: Vec<(&str, Vec<u32>, u64)> = Vec::new();
    for (name, dev) in devices() {
        dev.reset_counters().unwrap();
        let out = program(&dev).unwrap();
        let cycles = dev.cycles().unwrap();
        outputs.push((name, out, cycles));
    }
    let (base_name, base_out, sim_single_cycles) = &outputs[0];
    for (name, out, _) in &outputs[1..] {
        assert_eq!(base_out, out, "{name} output diverged from {base_name}");
    }
    assert_eq!(
        outputs[1].2, *sim_single_cycles,
        "func-single modeled cycles diverged from sim-single"
    );
    let sim_cluster_cycles = outputs[2].2;
    for (name, _, cycles) in &outputs[3..] {
        assert_eq!(
            *cycles, sim_cluster_cycles,
            "{name} modeled cycles diverged from sim-cluster"
        );
    }
}

#[test]
fn arithmetic_chain_matches_across_backends() {
    assert_backend_equivalent(|dev| {
        let a = dev.from_slice_f32(&float_inputs(300))?;
        let b = dev.full_f32(300, 1.0625)?;
        let z: Tensor = (&(&(&a * &b)? + &a)? - &b)?;
        let d = (&z / &b)?;
        d.to_raw_vec()
    });
}

#[test]
fn int_ops_and_select_match_across_backends() {
    assert_backend_equivalent(|dev| {
        let a = dev.from_slice_i32(&int_inputs(200))?;
        let b =
            dev.from_slice_i32(&int_inputs(200).iter().map(|v| v ^ 0x55).collect::<Vec<_>>())?;
        let sum = (&a + &b)?;
        let prod = (&a * &b)?;
        let cmp = a.lt(&b)?;
        let sel = cmp.select(&sum, &prod)?;
        sel.bit_xor(&a)?.to_raw_vec()
    });
}

#[test]
fn reductions_match_across_backends() {
    assert_backend_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(333))?;
        let i = dev.from_slice_i32(&int_inputs(250))?;
        Ok(vec![
            t.sum_f32()?.to_bits(),
            t.slice_step(0, 333, 3)?.prod_f32()?.to_bits(),
            i.sum_i32()? as u32,
            i.min_i32()? as u32,
            i.max_i32()? as u32,
        ])
    });
}

#[test]
fn sort_and_scan_match_across_backends() {
    assert_backend_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(96))?;
        let mut out = t.sorted()?.to_raw_vec()?;
        out.extend(t.cumsum()?.to_raw_vec()?);
        Ok(out)
    });
}

#[test]
fn crossing_moves_match_across_backends() {
    // Whole-shard shifts cross chip boundaries on the cluster topologies;
    // on the mixed cluster the transfer staging reads from a functional
    // shard and writes into a bit-accurate one (and vice versa).
    assert_backend_equivalent(|dev| {
        let t = dev.from_slice_i32(&int_inputs(1024))?;
        let up = pypim::shifted(&t, 256)?;
        let down = pypim::shifted(&t, -256)?;
        let mixed = (&up + &down)?;
        let far = pypim::shifted(&mixed, 512)?;
        let mut out = mixed.to_raw_vec()?;
        out.extend(far.to_raw_vec()?);
        Ok(out)
    });
}

#[test]
fn cordic_matches_across_backends() {
    assert_backend_equivalent(|dev| {
        let t = dev.from_slice_f32(&(0..64).map(|i| i as f32 * 0.05 - 1.6).collect::<Vec<_>>())?;
        t.sin()?.to_raw_vec()
    });
}

/// One fused gateway request — upload, two element-parallel ops, a full
/// reduction tree — on each cluster topology through the async serving
/// path. The gateway's coalesced submissions must stay bit-identical and
/// cycle-identical whatever backend each shard runs.
#[test]
fn fused_request_plans_match_across_backends() {
    let request = |client: &ClusterClient, values: &[f32]| -> Result<f32> {
        block_on(async {
            let mut plan = client.plan();
            let x = plan.upload_f32(values)?;
            let y = plan.full_f32(values.len(), 2.0)?;
            let xy = plan.mul(&x, &y)?;
            let z = plan.add(&xy, &x)?;
            let sum = plan.reduce(&z, RegOp::Add)?;
            plan.run().await?;
            Ok(client.to_vec_f32(&sum).await?[0])
        })
    };
    let values: Vec<f32> = (0..256).map(|i| (i % 13) as f32 * 0.25).collect();
    let mut outcomes: Vec<(&str, u32, u64)> = Vec::new();
    for backends in [
        ShardBackends::Uniform(BackendKind::BitAccurate),
        ShardBackends::Uniform(BackendKind::Functional),
        ShardBackends::PerShard(vec![
            BackendKind::Functional,
            BackendKind::BitAccurate,
            BackendKind::Functional,
            BackendKind::BitAccurate,
        ]),
    ] {
        let name = match &backends {
            ShardBackends::Uniform(BackendKind::BitAccurate) => "sim",
            ShardBackends::Uniform(BackendKind::Functional) => "func",
            _ => "mixed",
        };
        let dev = cluster(backends);
        let gateway = dev.serve(ServeConfig {
            session_warps: 8,
            ..ServeConfig::default()
        });
        let client = gateway.session().unwrap();
        let got = request(&client, &values).unwrap();
        outcomes.push((name, got.to_bits(), dev.cycles().unwrap()));
    }
    let (_, base_bits, base_cycles) = outcomes[0];
    for (name, bits, cycles) in &outcomes[1..] {
        assert_eq!(*bits, base_bits, "{name} gateway result diverged");
        assert_eq!(
            *cycles, base_cycles,
            "{name} gateway modeled cycles diverged"
        );
    }
}
