//! Sharded correctness: the same tensor programs on a single-chip device
//! (`Device::new`) and a 4-shard cluster presenting the identical logical
//! geometry (`Device::cluster`) must produce bit-identical results —
//! including non-associative float reductions (the cluster preserves the
//! logical combine tree rather than re-associating per shard) and sorted
//! output.

use proptest::prelude::*;
use pypim::{Coalesce, Device, InterconnectConfig, PimConfig, Result, Tensor};

/// Single chip: 16 crossbars × 64 rows.
fn single() -> Device {
    Device::new(PimConfig::small()).unwrap()
}

/// Four chips of 4 crossbars each — the same 16-warp logical geometry.
fn sharded() -> Device {
    Device::cluster(PimConfig::small().with_crossbars(4), 4).unwrap()
}

/// Awkward float inputs: subnormals, extremes, negative zero, non-dyadic
/// fractions — anything where re-associated summation would diverge.
fn float_inputs(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| match i % 7 {
            0 => 0.1 + i as f32,
            1 => -3.75e-3 * i as f32,
            2 => 1.0e-40, // subnormal
            3 => 3.4e37,
            4 => -0.0,
            5 => -7.25e-9 * i as f32,
            _ => (i as f32).sin() * 100.0,
        })
        .collect()
}

fn int_inputs(n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| (i as i32).wrapping_mul(0x9E37_79B9u32 as i32) ^ (i as i32) << 7)
        .collect()
}

/// Runs `program` on both devices and asserts bit-identical raw output.
fn assert_equivalent(program: impl Fn(&Device) -> Result<Vec<u32>>) {
    let on_single = program(&single()).unwrap();
    let on_cluster = program(&sharded()).unwrap();
    assert_eq!(
        on_single, on_cluster,
        "cluster output diverged from single chip"
    );
}

#[test]
fn arithmetic_chain_is_bit_identical() {
    assert_equivalent(|dev| {
        let a = dev.from_slice_f32(&float_inputs(300))?;
        let b = dev.full_f32(300, 1.0625)?;
        let z: Tensor = (&(&(&a * &b)? + &a)? - &b)?;
        let d = (&z / &b)?;
        d.to_raw_vec()
    });
}

#[test]
fn int_ops_and_comparisons_are_bit_identical() {
    assert_equivalent(|dev| {
        let a = dev.from_slice_i32(&int_inputs(200))?;
        let b =
            dev.from_slice_i32(&int_inputs(200).iter().map(|v| v ^ 0x55).collect::<Vec<_>>())?;
        let sum = (&a + &b)?;
        let prod = (&a * &b)?;
        let cmp = a.lt(&b)?;
        let sel = cmp.select(&sum, &prod)?;
        let mixed = sel.bit_xor(&a)?;
        mixed.to_raw_vec()
    });
}

#[test]
fn float_reduction_is_bit_identical() {
    // Non-associative sums: the cluster must reproduce the exact combine
    // tree of the single chip, not a per-shard re-association.
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(333))?;
        let s = t.sum_f32()?;
        let p = t.slice_step(0, 333, 3)?.prod_f32()?;
        Ok(vec![s.to_bits(), p.to_bits()])
    });
}

#[test]
fn int_reduction_and_minmax_are_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_i32(&int_inputs(250))?;
        Ok(vec![
            t.sum_i32()? as u32,
            t.prod_i32()? as u32,
            t.min_i32()? as u32,
            t.max_i32()? as u32,
        ])
    });
}

#[test]
fn sorted_output_is_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(96))?;
        let s = t.sorted()?;
        s.to_raw_vec()
    });
}

#[test]
fn views_and_movement_are_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_i32(&int_inputs(256))?;
        // Misaligned operands force the move-based alignment fallback,
        // which on the cluster exercises cross-chip transfers.
        let even = t.even()?;
        let odd = t.odd()?;
        let mixed = (&even + &odd)?;
        let shifted = pypim::shifted(&t, 64)?; // one whole shard's worth
        let head = shifted.slice(0, 128)?;
        let mut out = mixed.to_raw_vec()?;
        out.extend(head.to_raw_vec()?);
        Ok(out)
    });
}

#[test]
fn cross_heavy_moves_are_bit_identical() {
    // Whole-shard shifts: every moved warp crosses a chip boundary on the
    // 4-shard device, so this exercises the interconnect's batched staging
    // and the dependency-aware drain end to end, in both directions and
    // mixed with element work between the crossings.
    assert_equivalent(|dev| {
        let t = dev.from_slice_i32(&int_inputs(1024))?;
        let up = pypim::shifted(&t, 256)?; // one whole shard upward
        let down = pypim::shifted(&t, -256)?; // one whole shard downward
        let mixed = (&up + &down)?;
        let far = pypim::shifted(&mixed, 512)?; // two shards at once
        let mut out = mixed.to_raw_vec()?;
        out.extend(far.to_raw_vec()?);
        Ok(out)
    });
}

#[test]
fn cross_shard_rotate_chain_is_bit_identical() {
    // A rotate built from two opposing shifts plus a partial (boundary
    // splitting) shift: sub-moves that only partially cross a chip edge
    // must split into a native part and an interconnect part.
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(512))?;
        let k = 192; // not a multiple of the 256-element shard: splits
        let hi = pypim::shifted(&t, k as i64)?;
        let lo = pypim::shifted(&t, k as i64 - 512)?;
        let rot = (&hi + &lo)?; // rotation by k (each element from one side)
        let s = rot.sum_f32()?;
        let mut out = rot.to_raw_vec()?;
        out.push(s.to_bits());
        Ok(out)
    });
}

#[test]
fn scan_is_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(120))?;
        let c = t.cumsum()?;
        c.to_raw_vec()
    });
}

#[test]
fn figure12_program_on_cluster() {
    // The paper's example program, straight on a 4-chip cluster.
    let dev = sharded();
    let n = 1024;
    let mut x = dev.zeros_f32(n).unwrap();
    let mut y = dev.zeros_f32(n).unwrap();
    x.set_f32(4, 8.0).unwrap();
    y.set_f32(4, 0.5).unwrap();
    x.set_f32(5, 20.0).unwrap();
    y.set_f32(5, 1.0).unwrap();
    x.set_f32(8, 10.0).unwrap();
    y.set_f32(8, 1.0).unwrap();
    let z = (&(&x * &y).unwrap() + &x).unwrap();
    assert_eq!(z.slice_step(0, n, 2).unwrap().sum_f32().unwrap(), 32.0);
    // Telemetry exists and shows multi-shard activity.
    let stats = dev.cluster_stats().unwrap().unwrap();
    assert_eq!(stats.shards.len(), 4);
    assert!(stats.shards.iter().all(|s| s.profiler.cycles > 0));
    let (hits, misses) = stats.cache_stats();
    assert!(hits + misses > 0);
}

#[test]
fn small_tensors_allocate_chip_local() {
    // Shard-aware placement: after a 3-warp filler, a 2-warp tensor would
    // first-fit at warp 3, straddling the chip boundary at warp 4 — the
    // shard-aware allocator skips to warp 4 instead, so shifting it (and
    // every other operation confined to its stripe) never touches the
    // interconnect.
    let dev = sharded(); // 4 chips x 4 crossbars x 64 rows
    let _filler = dev.from_slice_i32(&int_inputs(192)).unwrap(); // 3 warps
    let vals = int_inputs(128);
    let t = dev.from_slice_i32(&vals).unwrap(); // 2 warps: fits one chip
    let s = pypim::shifted(&t, 64).unwrap(); // one whole warp
    assert_eq!(
        s.slice(0, 64).unwrap().to_vec_i32().unwrap(),
        vals[64..],
        "chip-local shift must preserve values"
    );
    let mixed = (&t.even().unwrap() + &t.odd().unwrap()).unwrap();
    assert_eq!(mixed.get_i32(0).unwrap(), vals[0].wrapping_add(vals[1]));
    let traffic = dev.cluster_stats().unwrap().unwrap().traffic;
    assert_eq!(
        traffic.cross_words, 0,
        "operations on a chip-local tensor must not cross chips"
    );
}

/// A 4-shard device with the same logical geometry as [`sharded`] and an
/// explicit move-coalescing policy.
fn sharded_coalesce(coalesce: Coalesce) -> Device {
    Device::cluster_with_interconnect(
        PimConfig::small().with_crossbars(4),
        4,
        pypim::driver::ParallelismMode::default(),
        InterconnectConfig {
            coalesce,
            ..InterconnectConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(5))]

    /// Arbitrary shift/rotate sequences leave bit-identical memory with
    /// the move coalescer on, off, and on a single chip. Every step
    /// re-compacts the shift's defined region into a fully-initialized
    /// tensor (padding included), so the compared bytes never depend on
    /// unspecified out-of-range cells.
    #[test]
    fn shift_sequences_bit_identical_under_coalescing(
        dists_raw in proptest::collection::vec(1i64..1024, 1..4),
        signs in proptest::collection::vec(0u8..2, 3),
    ) {
        let n = 1024usize; // the whole 16-warp x 64-row logical memory
        let dists: Vec<i64> = dists_raw
            .iter()
            .zip(signs.iter().cycle())
            .map(|(&d, &s)| if s == 0 { d } else { -d })
            .collect();
        let program = |dev: &Device| -> Result<Vec<u32>> {
            let mut t = dev.from_slice_i32(&int_inputs(n))?;
            let mut out = Vec::new();
            for (step, &d) in dists.iter().enumerate() {
                let s = pypim::shifted(&t, d)?;
                // The defined region of the shift: r[i] = t[i + d].
                let (lo, hi) = if d >= 0 {
                    (0, n - d as usize)
                } else {
                    ((-d) as usize, n)
                };
                let valid = s.slice(lo, hi)?;
                out.extend(valid.to_raw_vec()?);
                // Rebuild a fully-defined input for the next round (the
                // rotate idiom: valid slice back to full length + pad).
                t = pypim::compact_with_padding(&valid, n, 0x5EED + step as u32)?;
            }
            Ok(out)
        };
        let on_single = program(&single()).unwrap();
        let coalesced = program(&sharded_coalesce(Coalesce::On)).unwrap();
        let per_move = program(&sharded_coalesce(Coalesce::Off)).unwrap();
        prop_assert_eq!(&on_single, &coalesced, "Coalesce::On diverged");
        prop_assert_eq!(&coalesced, &per_move, "On vs Off diverged");
    }
}

proptest! {
    /// The coalescer merges two crossing moves only when they share a warp
    /// distance and are independent at the cell level: brute-force the
    /// read/write cell sets of both moves and check every accepted merge
    /// against them (different distances and overlapping masks must never
    /// merge).
    #[test]
    fn coalescer_never_merges_hazardous_moves(
        crossbars in 1usize..5, shards in 2usize..5,
        a_start in 0u32..64, a_count in 1u32..16, a_step in 1u32..4,
        b_start in 0u32..64, b_count in 1u32..16, b_step in 1u32..4,
        a_dist_raw in 0i64..4096, b_dist_raw in 0i64..4096,
        regs_raw in 0u32..256, rows_raw in 0u32..256,
    ) {
        use pypim::{CrossingMove, MoveCoalescer, RangeMask, ShardPlan};
        use std::collections::HashSet;

        let total = (crossbars * shards) as u32;
        let cfg = PimConfig::small().with_crossbars(crossbars);
        let plan = ShardPlan::new(&cfg, shards).unwrap();
        // Derive masks and distances that always fit the geometry.
        let mask = |start_raw: u32, count_raw: u32, step: u32| {
            let start = start_raw % total;
            let max_count = (total - 1 - start) / step + 1;
            RangeMask::strided(start, 1 + count_raw % max_count, step).unwrap()
        };
        let dist = |m: &RangeMask, raw: i64| {
            let lo = -(i64::from(m.start()));
            let hi = i64::from(total - 1 - m.stop());
            (lo + raw % (hi - lo + 1)) as i32
        };
        let a_mask = mask(a_start, a_count, a_step);
        let b_mask = mask(b_start, b_count, b_step);
        let a_dist = dist(&a_mask, a_dist_raw);
        let b_dist = dist(&b_mask, b_dist_raw);
        // Registers/rows: four independent 2-bit register picks and four
        // independent 2-bit rows (source and destination rows drawn
        // separately), so every hazard direction (read-write, write-read,
        // write-write) occurs in some cases and not in others, including
        // across row-mismatched footprints.
        let regs = regs_raw as u8;
        let (a_src, a_dst) = (regs & 3, (regs >> 2) & 3);
        let (b_src, b_dst) = ((regs >> 4) & 3, (regs >> 6) & 3);
        let (a_row_src, a_row_dst) = (rows_raw & 3, (rows_raw >> 2) & 3);
        let (b_row_src, b_row_dst) = ((rows_raw >> 4) & 3, (rows_raw >> 6) & 3);
        let a = CrossingMove::new(
            plan.route_move_warps(&a_mask, a_dist),
            &a_mask, a_dist, a_src, a_dst, a_row_src, a_row_dst,
        );
        let b = CrossingMove::new(
            plan.route_move_warps(&b_mask, b_dist),
            &b_mask, b_dist, b_src, b_dst, b_row_src, b_row_dst,
        );
        let (Some(a), Some(b)) = (a, b) else {
            return Ok(()); // one of the moves stayed on-chip: nothing to merge
        };
        let mut c = MoveCoalescer::new(Coalesce::On);
        c.push(a);
        if c.accepts(&b) {
            prop_assert_eq!(a_dist, b_dist, "merged across distances");
            // Brute-force cell sets of the whole logical moves.
            let cells = |reg: u8, row: u32, m: &RangeMask, d: i32| -> HashSet<(u8, u32, u32)> {
                m.iter().map(|w| (reg, row, (i64::from(w) + i64::from(d)) as u32)).collect()
            };
            let a_reads = cells(a_src, a_row_src, &a_mask, 0);
            let a_writes = cells(a_dst, a_row_dst, &a_mask, a_dist);
            let b_reads = cells(b_src, b_row_src, &b_mask, 0);
            let b_writes = cells(b_dst, b_row_dst, &b_mask, b_dist);
            prop_assert!(a_writes.is_disjoint(&b_reads), "merged a write-read hazard");
            prop_assert!(a_reads.is_disjoint(&b_writes), "merged a read-write hazard");
            prop_assert!(a_writes.is_disjoint(&b_writes), "merged a write-write hazard");
        }
    }
}

#[test]
fn execute_batch_protocol_rejects_reads_on_both_engines() {
    // The no-reads-in-batches protocol of Backend::execute_batch holds on
    // the single chip and through the cluster shard path.
    use pypim::arch::{Backend, MicroOp};
    use pypim::sim::PimSimulator;

    let mut sim = PimSimulator::new(PimConfig::small()).unwrap();
    assert!(sim.execute_batch(&[MicroOp::Read { index: 0 }]).is_err());

    let cluster = pypim::PimCluster::new(PimConfig::small().with_crossbars(4), 4).unwrap();
    for shard in 0..4 {
        assert!(cluster
            .execute_micro_batch(shard, vec![MicroOp::Read { index: 0 }])
            .is_err());
    }
}
