//! Sharded correctness: the same tensor programs on a single-chip device
//! (`Device::new`) and a 4-shard cluster presenting the identical logical
//! geometry (`Device::cluster`) must produce bit-identical results —
//! including non-associative float reductions (the cluster preserves the
//! logical combine tree rather than re-associating per shard) and sorted
//! output.

use pypim::{Device, PimConfig, Result, Tensor};

/// Single chip: 16 crossbars × 64 rows.
fn single() -> Device {
    Device::new(PimConfig::small()).unwrap()
}

/// Four chips of 4 crossbars each — the same 16-warp logical geometry.
fn sharded() -> Device {
    Device::cluster(PimConfig::small().with_crossbars(4), 4).unwrap()
}

/// Awkward float inputs: subnormals, extremes, negative zero, non-dyadic
/// fractions — anything where re-associated summation would diverge.
fn float_inputs(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| match i % 7 {
            0 => 0.1 + i as f32,
            1 => -3.75e-3 * i as f32,
            2 => 1.0e-40, // subnormal
            3 => 3.4e37,
            4 => -0.0,
            5 => -7.25e-9 * i as f32,
            _ => (i as f32).sin() * 100.0,
        })
        .collect()
}

fn int_inputs(n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| (i as i32).wrapping_mul(0x9E37_79B9u32 as i32) ^ (i as i32) << 7)
        .collect()
}

/// Runs `program` on both devices and asserts bit-identical raw output.
fn assert_equivalent(program: impl Fn(&Device) -> Result<Vec<u32>>) {
    let on_single = program(&single()).unwrap();
    let on_cluster = program(&sharded()).unwrap();
    assert_eq!(
        on_single, on_cluster,
        "cluster output diverged from single chip"
    );
}

#[test]
fn arithmetic_chain_is_bit_identical() {
    assert_equivalent(|dev| {
        let a = dev.from_slice_f32(&float_inputs(300))?;
        let b = dev.full_f32(300, 1.0625)?;
        let z: Tensor = (&(&(&a * &b)? + &a)? - &b)?;
        let d = (&z / &b)?;
        d.to_raw_vec()
    });
}

#[test]
fn int_ops_and_comparisons_are_bit_identical() {
    assert_equivalent(|dev| {
        let a = dev.from_slice_i32(&int_inputs(200))?;
        let b =
            dev.from_slice_i32(&int_inputs(200).iter().map(|v| v ^ 0x55).collect::<Vec<_>>())?;
        let sum = (&a + &b)?;
        let prod = (&a * &b)?;
        let cmp = a.lt(&b)?;
        let sel = cmp.select(&sum, &prod)?;
        let mixed = sel.bit_xor(&a)?;
        mixed.to_raw_vec()
    });
}

#[test]
fn float_reduction_is_bit_identical() {
    // Non-associative sums: the cluster must reproduce the exact combine
    // tree of the single chip, not a per-shard re-association.
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(333))?;
        let s = t.sum_f32()?;
        let p = t.slice_step(0, 333, 3)?.prod_f32()?;
        Ok(vec![s.to_bits(), p.to_bits()])
    });
}

#[test]
fn int_reduction_and_minmax_are_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_i32(&int_inputs(250))?;
        Ok(vec![
            t.sum_i32()? as u32,
            t.prod_i32()? as u32,
            t.min_i32()? as u32,
            t.max_i32()? as u32,
        ])
    });
}

#[test]
fn sorted_output_is_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(96))?;
        let s = t.sorted()?;
        s.to_raw_vec()
    });
}

#[test]
fn views_and_movement_are_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_i32(&int_inputs(256))?;
        // Misaligned operands force the move-based alignment fallback,
        // which on the cluster exercises cross-chip transfers.
        let even = t.even()?;
        let odd = t.odd()?;
        let mixed = (&even + &odd)?;
        let shifted = pypim::shifted(&t, 64)?; // one whole shard's worth
        let head = shifted.slice(0, 128)?;
        let mut out = mixed.to_raw_vec()?;
        out.extend(head.to_raw_vec()?);
        Ok(out)
    });
}

#[test]
fn cross_heavy_moves_are_bit_identical() {
    // Whole-shard shifts: every moved warp crosses a chip boundary on the
    // 4-shard device, so this exercises the interconnect's batched staging
    // and the dependency-aware drain end to end, in both directions and
    // mixed with element work between the crossings.
    assert_equivalent(|dev| {
        let t = dev.from_slice_i32(&int_inputs(1024))?;
        let up = pypim::shifted(&t, 256)?; // one whole shard upward
        let down = pypim::shifted(&t, -256)?; // one whole shard downward
        let mixed = (&up + &down)?;
        let far = pypim::shifted(&mixed, 512)?; // two shards at once
        let mut out = mixed.to_raw_vec()?;
        out.extend(far.to_raw_vec()?);
        Ok(out)
    });
}

#[test]
fn cross_shard_rotate_chain_is_bit_identical() {
    // A rotate built from two opposing shifts plus a partial (boundary
    // splitting) shift: sub-moves that only partially cross a chip edge
    // must split into a native part and an interconnect part.
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(512))?;
        let k = 192; // not a multiple of the 256-element shard: splits
        let hi = pypim::shifted(&t, k as i64)?;
        let lo = pypim::shifted(&t, k as i64 - 512)?;
        let rot = (&hi + &lo)?; // rotation by k (each element from one side)
        let s = rot.sum_f32()?;
        let mut out = rot.to_raw_vec()?;
        out.push(s.to_bits());
        Ok(out)
    });
}

#[test]
fn scan_is_bit_identical() {
    assert_equivalent(|dev| {
        let t = dev.from_slice_f32(&float_inputs(120))?;
        let c = t.cumsum()?;
        c.to_raw_vec()
    });
}

#[test]
fn figure12_program_on_cluster() {
    // The paper's example program, straight on a 4-chip cluster.
    let dev = sharded();
    let n = 1024;
    let mut x = dev.zeros_f32(n).unwrap();
    let mut y = dev.zeros_f32(n).unwrap();
    x.set_f32(4, 8.0).unwrap();
    y.set_f32(4, 0.5).unwrap();
    x.set_f32(5, 20.0).unwrap();
    y.set_f32(5, 1.0).unwrap();
    x.set_f32(8, 10.0).unwrap();
    y.set_f32(8, 1.0).unwrap();
    let z = (&(&x * &y).unwrap() + &x).unwrap();
    assert_eq!(z.slice_step(0, n, 2).unwrap().sum_f32().unwrap(), 32.0);
    // Telemetry exists and shows multi-shard activity.
    let stats = dev.cluster_stats().unwrap();
    assert_eq!(stats.shards.len(), 4);
    assert!(stats.shards.iter().all(|s| s.profiler.cycles > 0));
    let (hits, misses) = stats.cache_stats();
    assert!(hits + misses > 0);
}

#[test]
fn execute_batch_protocol_rejects_reads_on_both_engines() {
    // The no-reads-in-batches protocol of Backend::execute_batch holds on
    // the single chip and through the cluster shard path.
    use pypim::arch::{Backend, MicroOp};
    use pypim::sim::PimSimulator;

    let mut sim = PimSimulator::new(PimConfig::small()).unwrap();
    assert!(sim.execute_batch(&[MicroOp::Read { index: 0 }]).is_err());

    let cluster = pypim::PimCluster::new(PimConfig::small().with_crossbars(4), 4).unwrap();
    for shard in 0..4 {
        assert!(cluster
            .execute_micro_batch(shard, vec![MicroOp::Read { index: 0 }])
            .is_err());
    }
}
