//! Offline stub for `serde`: marker traits plus the no-op derives from the
//! sibling `serde_derive` stub. Nothing in this workspace serializes yet;
//! when it does, point `[workspace.dependencies]` back at the real crates.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
