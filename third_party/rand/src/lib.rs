//! Offline stub for `rand` 0.8: a deterministic SplitMix64 generator behind
//! the `StdRng`/`Rng`/`SeedableRng` API surface this workspace uses
//! (`seed_from_u64`, `gen`, `gen_range` over integer and float ranges).
//!
//! The statistical quality is adequate for test-vector generation; swap in
//! the real crate for anything security- or distribution-sensitive.

use std::ops::Range;

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible directly by [`Rng::gen`] from one 64-bit draw.
pub trait Standard: Sized {
    /// Derives a value from a raw 64-bit random word.
    fn from_u64(word: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {
        $(impl Standard for $t {
            fn from_u64(word: u64) -> Self {
                word as $t
            }
        })+
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for f32 {
    fn from_u64(word: u64) -> Self {
        (word >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_u64(word: u64) -> Self {
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait UniformSampled: Sized {
    /// Uniform sample from `range` given a raw 64-bit random word.
    fn uniform(range: Range<Self>, word: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {
        $(impl UniformSampled for $t {
            fn uniform(range: Range<Self>, word: u64) -> Self {
                let span = (range.end as i128 - range.start as i128) as u128;
                assert!(span > 0, "gen_range over an empty range");
                (range.start as i128 + (word as u128 % span) as i128) as $t
            }
        })+
    };
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSampled for f32 {
    fn uniform(range: Range<Self>, word: u64) -> Self {
        let unit = (word >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl UniformSampled for f64 {
    fn uniform(range: Range<Self>, word: u64) -> Self {
        let unit = (word >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// The generation API surface of rand 0.8 used by this workspace.
pub trait Rng {
    /// Produces the next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// A uniform sample from the half-open `range`.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::uniform(range, self.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(-50i32..-40);
            assert!((-50..-40).contains(&i));
        }
    }
}
