//! The case-execution harness: configuration, RNG, and runner.

use crate::strategy::Strategy;
use std::fmt::Debug;

/// Runner configuration (`cases` is the number of *accepted* cases).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the stub trades coverage for CI
        // speed (generation is cheap and deterministic, so failures
        // replay instantly anyway).
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator feeding the strategies — the rand stub's
/// SplitMix64 (`rand::rngs::StdRng`) behind a proptest-shaped API, so the
/// workspace has exactly one SplitMix64 core.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: rand::rngs::StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng;
        // Historical sequence compatibility: this runner used to start
        // SplitMix64 at state `seed ^ 0x5851…7F2D`. `StdRng::seed_from_u64`
        // adds the SplitMix64 golden constant during construction, so
        // subtract it here to land on the same initial state — existing
        // proptest regressions replay unchanged.
        TestRng {
            rng: rand::rngs::StdRng::seed_from_u64(
                (seed ^ 0x5851_F42D_4C95_7F2D).wrapping_sub(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::Rng;
        self.rng.gen::<u64>()
    }

    /// Uniform `usize` below `bound` (must be nonzero).
    pub fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (assumption not met) with `reason`.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// A property failure: the message plus a debug rendering of the inputs.
#[derive(Debug, Clone)]
pub struct TestError {
    /// Assertion message.
    pub message: String,
    /// Debug rendering of the generated inputs for the failing case.
    pub input: String,
}

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (input: {})", self.message, self.input)
    }
}

impl std::error::Error for TestError {}

/// Executes a property over many generated cases. A failing case is
/// greedily shrunk (bounded extra executions) before being reported.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::new(ProptestConfig::default())
    }
}

impl TestRunner {
    /// A runner with `config` and the default seed.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::from_seed(0x00C0_FFEE),
        }
    }

    /// A runner seeded from a test name, so distinct properties explore
    /// distinct sequences while staying reproducible.
    pub fn new_with_name(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            rng: TestRng::from_seed(seed),
        }
    }

    /// Runs `test` over generated inputs until the configured number of
    /// cases is accepted (rejections retry, bounded at 20× the case count).
    /// The first failing case is shrunk before being reported: the runner
    /// repeatedly adopts the first [`Strategy::shrink`] candidate that
    /// still fails, stopping at a local minimum or after 256 extra test
    /// executions.
    ///
    /// # Errors
    ///
    /// Returns the first failing case (shrunk) with its input rendering,
    /// or an error if `prop_assume!` rejected *every* attempt — a property
    /// that verified nothing must not pass silently.
    pub fn run<S>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), TestError>
    where
        S: Strategy,
        S::Value: Debug + Clone,
    {
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        let max_attempts = self.config.cases.saturating_mul(20).max(20);
        while accepted < self.config.cases && attempts < max_attempts {
            attempts += 1;
            let value = strategy.generate(&mut self.rng);
            match test(value.clone()) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(message)) => {
                    let (best, best_msg) =
                        Self::shrink_failure(strategy, value, message, &mut test);
                    return Err(TestError {
                        message: best_msg,
                        input: format!("{best:?}"),
                    });
                }
            }
        }
        // Mirror real proptest's too-many-global-rejects failure: a
        // property that mostly rejects is silently under-tested.
        if accepted < self.config.cases.div_ceil(2) {
            return Err(TestError {
                message: format!(
                    "prop_assume! rejected too many cases (accepted {accepted} of \
                     {} over {attempts} attempts) — loosen the assumption or \
                     constrain the strategy",
                    self.config.cases
                ),
                input: String::new(),
            });
        }
        Ok(())
    }

    /// Greedy shrink: adopt the first candidate that still fails, re-ask
    /// the strategy from the adopted value, stop at a fixpoint (no
    /// candidate fails) or once `MAX_SHRINK_EXECS` re-executions are
    /// spent. Rejected candidates (`prop_assume!`) count as passing —
    /// they are outside the property's domain.
    fn shrink_failure<S>(
        strategy: &S,
        seed: S::Value,
        seed_msg: String,
        test: &mut impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) -> (S::Value, String)
    where
        S: Strategy,
        S::Value: Clone,
    {
        const MAX_SHRINK_EXECS: u32 = 256;
        let mut best = seed;
        let mut best_msg = seed_msg;
        let mut execs = 0u32;
        'rounds: loop {
            for cand in strategy.shrink(&best) {
                if execs >= MAX_SHRINK_EXECS {
                    break 'rounds;
                }
                execs += 1;
                if let Err(TestCaseError::Fail(msg)) = test(cand.clone()) {
                    best = cand;
                    best_msg = msg;
                    continue 'rounds;
                }
            }
            break;
        }
        (best, best_msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn rng_sequence_matches_historical_splitmix() {
        // The delegation to the rand stub must reproduce the sequence of
        // the runner's original inline SplitMix64 (state = seed ^ const,
        // add-then-mix per draw) bit for bit, so recorded proptest
        // failures replay unchanged.
        let mut rng = TestRng::from_seed(0x00C0_FFEE);
        let mut state = 0x00C0_FFEEu64 ^ 0x5851_F42D_4C95_7F2D;
        for i in 0..64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            assert_eq!(rng.next_u64(), z ^ (z >> 31), "draw {i}");
        }
    }

    #[test]
    fn runner_rejects_vacuous_properties() {
        let mut runner = TestRunner::default();
        let err = runner
            .run(&(0u32..10,), |(_v,)| {
                Err(TestCaseError::reject("always rejected"))
            })
            .unwrap_err();
        assert!(err.message.contains("rejected too many"), "{}", err.message);
    }

    #[test]
    fn runner_reports_failing_input() {
        let mut runner = TestRunner::default();
        let err = runner
            .run(&(0u32..1000,), |(v,)| {
                prop_assert!(v < 990, "value {v} too big");
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.contains("too big"));
    }

    #[test]
    fn shrinks_monotone_int_to_exact_minimum() {
        // The halving chain crosses the gap fast; the trailing `v - 1`
        // candidate walks the last few steps, so the fixpoint is the
        // smallest failing value, exactly.
        let mut runner = TestRunner::default();
        let err = runner
            .run(&(0u32..1000,), |(v,)| {
                prop_assert!(v < 10, "value {v} too big");
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.input, "(10,)", "{}", err.message);
        assert!(err.message.contains("value 10 too big"));
    }

    #[test]
    fn shrinks_vec_to_minimal_witness() {
        // Removal candidates shed the irrelevant elements; element
        // shrinking then minimizes the surviving witness.
        let mut runner = TestRunner::default();
        let err = runner
            .run(&(crate::collection::vec(0i32..100, 0..8),), |(v,)| {
                prop_assert!(v.iter().all(|&x| x < 10), "big element in {v:?}");
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.input, "([10],)", "{}", err.message);
    }

    #[test]
    fn shrink_respects_vec_lower_bound() {
        // A failing case over `vec(_, 3..8)` must not shrink below three
        // elements even though shorter vectors would still fail.
        let mut runner = TestRunner::default();
        let err = runner
            .run(&(crate::collection::vec(0i32..100, 3..8),), |(v,)| {
                prop_assert!(v.len() < 3, "len {} >= 3", v.len());
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.input, "([0, 0, 0],)", "{}", err.message);
    }

    #[test]
    fn passing_property_is_untouched_by_shrinking() {
        let mut runner = TestRunner::default();
        runner
            .run(&(0u32..1000,), |(_v,)| Ok(()))
            .expect("property holds");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(a in 3u32..17, v in crate::collection::vec(0i32..5, 2..6)) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assume!(a != 5);
            prop_assert_ne!(a, 5);
        }
    }
}
