//! Value-generation strategies: ranges, tuples, constants, and `any`.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first. The
    /// runner adopts the first candidate that still fails the property and
    /// asks again, so a log-length chain (halving) plus a final
    /// single-step candidate reaches a local minimum quickly. Default:
    /// no simplifications (the failure is reported as generated).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The unconstrained strategy for `A` (`any::<u32>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<A>);

/// Strategy producing any value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "strategy over an empty range");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            /// Halves the distance to the range's low end, then steps by
            /// one: `[start + d/2, start + d/4, …, start, value - 1]`.
            /// The halving chain crosses large gaps in O(log d) adopted
            /// candidates; the trailing single step makes the fixpoint an
            /// exact local minimum for monotone predicates.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value as i128;
                let start = self.start as i128;
                let mut out = Vec::new();
                let mut d = v - start;
                while d > 0 {
                    d /= 2;
                    let cand = (start + d) as $t;
                    if cand != *value && !out.contains(&cand) {
                        out.push(cand);
                    }
                }
                if v > start {
                    let step = (v - 1) as $t;
                    if !out.contains(&step) {
                        out.push(step);
                    }
                }
                out
            }
        })+
    };
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f32() * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }

            /// Shrinks one component at a time, holding the others fixed.
            #[allow(non_snake_case)]
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let ($($name,)+) = self;
                let mut out = Vec::new();
                $(
                    for cand in $name.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9),
    (K, 10)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9),
    (K, 10),
    (L, 11)
);

macro_rules! impl_tuple_arbitrary {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_tuple_arbitrary!(A);
impl_tuple_arbitrary!(A, B);
impl_tuple_arbitrary!(A, B, C);
impl_tuple_arbitrary!(A, B, C, D);
impl_tuple_arbitrary!(A, B, C, D, E);
impl_tuple_arbitrary!(A, B, C, D, E, F);
impl_tuple_arbitrary!(A, B, C, D, E, F, G);
impl_tuple_arbitrary!(A, B, C, D, E, F, G, H);
impl_tuple_arbitrary!(A, B, C, D, E, F, G, H, I);
impl_tuple_arbitrary!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_arbitrary!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_arbitrary!(A, B, C, D, E, F, G, H, I, J, K, L);
