//! Offline stub for `parking_lot`: the `Mutex` and `RwLock` API this
//! workspace uses, implemented over the std primitives. Locking never
//! returns a poison error (a poisoned lock yields the inner data, matching
//! parking_lot's no-poisoning semantics).

/// Guard type; identical to the std guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Shared-read guard; identical to the std guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive-write guard; identical to the std guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Poisoning is
    /// ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    /// Poisoning is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }
}
