//! Offline stub for `parking_lot`: the `Mutex` API this workspace uses,
//! implemented over `std::sync::Mutex`. `lock()` never returns a poison
//! error (a poisoned lock yields the inner data, matching parking_lot's
//! no-poisoning semantics).

/// Guard type; identical to the std guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}
