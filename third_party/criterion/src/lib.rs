//! Offline stub for `criterion`: the group/bench API surface this
//! workspace uses, backed by a plain wall-clock timer. No plots or
//! baselines, but each benchmark is measured as a series of samples whose
//! min/median/mean land both on stdout and in a machine-readable
//! `BENCH_<binary>.json` at the workspace root, so the perf trajectory of
//! a kernel is diffable across commits.
//!
//! Smoke mode: passing `--quick` (or setting `CRITERION_QUICK=1`) caps the
//! measurement at a handful of iterations per benchmark — enough for CI to
//! notice a kernel that stopped compiling or slowed by an order of
//! magnitude, without burning minutes of runner time.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub use std::hint::black_box;

/// Number of timed samples per benchmark (each sample runs one or more
/// iterations).
const SAMPLES: usize = 20;
/// Target wall time across all samples of one benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(200);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Seconds-per-iteration summary statistics of one benchmark's samples.
#[derive(Debug, Clone, Copy)]
pub struct SampleStats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean over all samples.
    pub mean: f64,
    /// 50th-percentile sample (equals `median` for timed runs; carries the
    /// real distribution median for caller-reported stats).
    pub p50: f64,
    /// 99th-percentile sample — the tail a throughput median hides.
    pub p99: f64,
    /// 99.9th-percentile sample (equals `p99` for the stub's small timed
    /// sample counts; carries a real far tail for caller-reported stats).
    pub p999: f64,
    /// Total iterations across every sample.
    pub iters: u64,
}

impl SampleStats {
    /// Stats where every percentile collapses to one `seconds` value — the
    /// shape of a single caller-measured metric.
    pub fn point(seconds: f64) -> Self {
        SampleStats {
            min: seconds,
            median: seconds,
            mean: seconds,
            p50: seconds,
            p99: seconds,
            p999: seconds,
            iters: 1,
        }
    }

    fn from_samples(per_iter: &mut [f64], iters: u64) -> Option<Self> {
        if per_iter.is_empty() {
            return None;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let nearest = |p: f64| {
            let idx = ((per_iter.len() as f64 - 1.0) * p).round() as usize;
            per_iter[idx]
        };
        Some(SampleStats {
            min: per_iter[0],
            median: per_iter[per_iter.len() / 2],
            mean: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            p50: nearest(0.50),
            p99: nearest(0.99),
            p999: nearest(0.999),
            iters,
        })
    }
}

/// One finished benchmark: group/id plus its statistics.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    id: String,
    stats: SampleStats,
    throughput: Option<Throughput>,
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    iters_done: u64,
    quick: bool,
}

impl Bencher {
    /// Times `routine` repeatedly, collecting per-sample iteration times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + calibration: how many iterations fit one sample window.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= MEASURE_FOR / 10 || warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let samples = if self.quick { 3 } else { SAMPLES };
        let sample_window = MEASURE_FOR.as_secs_f64() / samples as f64;
        let iters_per_sample = if self.quick {
            1
        } else {
            ((sample_window / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000)
        };
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
            self.iters_done += iters_per_sample;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_done: 0,
            quick: self.criterion.quick,
        };
        f(&mut b);
        let Some(stats) = SampleStats::from_samples(&mut b.samples, b.iters_done) else {
            println!("{}/{id}: no iterations measured", self.name);
            return;
        };
        let record = Record {
            group: self.name.clone(),
            id: id.to_string(),
            stats,
            throughput: self.throughput,
        };
        report(&record);
        self.criterion.records.push(record);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Records a caller-measured value (seconds) as one benchmark entry —
    /// a stub extension (not in the real criterion API) for derived
    /// statistics a timing loop cannot produce, e.g. latency percentiles
    /// across concurrent requests or modeled-clock measurements. The entry
    /// lands in the JSON report like any timed benchmark, with
    /// `min = median = mean = seconds`; pass a throughput to get a
    /// meaningful `per_sec_median`.
    pub fn report_metric(
        &mut self,
        id: impl std::fmt::Display,
        seconds: f64,
        throughput: Option<Throughput>,
    ) {
        self.report_stats(id, SampleStats::point(seconds), throughput);
    }

    /// Records caller-computed [`SampleStats`] as one benchmark entry — the
    /// stub extension behind real latency tails: a harness that measured a
    /// whole distribution (e.g. per-request modeled latencies off a
    /// telemetry histogram) reports its true p50/p99 instead of the
    /// collapsed point [`report_metric`](BenchmarkGroup::report_metric)
    /// produces.
    pub fn report_stats(
        &mut self,
        id: impl std::fmt::Display,
        stats: SampleStats,
        throughput: Option<Throughput>,
    ) {
        let record = Record {
            group: self.name.clone(),
            id: id.to_string(),
            stats,
            throughput,
        };
        report(&record);
        self.criterion.records.push(record);
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

fn report(r: &Record) {
    let mut line = format!(
        "{}/{}: {:>12} per iter (median; min {}, mean {}, p99 {}, {} iters)",
        r.group,
        r.id,
        format_time(r.stats.median),
        format_time(r.stats.min),
        format_time(r.stats.mean),
        format_time(r.stats.p99),
        r.stats.iters
    );
    match r.throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(", {:.3e} elem/s", n as f64 / r.stats.median));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(", {:.3e} B/s", n as f64 / r.stats.median));
        }
        None => {}
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Record>,
    quick: bool,
}

impl Criterion {
    /// Applies command-line configuration. The stub understands `--quick`
    /// (and the `CRITERION_QUICK=1` environment equivalent) and ignores the
    /// rest of criterion's CLI, including `--bench`.
    pub fn configure_from_args(mut self) -> Self {
        self.quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single unnamed-group benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }

    /// Final summary hook: writes `BENCH_<name>.json` at the workspace root
    /// (the nearest ancestor directory holding a `Cargo.lock`), where
    /// `<name>` is the benchmark binary's name with cargo's `-<hash>`
    /// suffix stripped. Each entry records seconds-per-iteration
    /// min/median/mean plus the throughput annotation.
    ///
    /// `--quick` smoke runs skip the write: their few-iteration timings
    /// are noise and must not clobber the committed perf trajectory.
    pub fn final_summary(&mut self) {
        if self.records.is_empty() || self.quick {
            return;
        }
        let Some(name) = bench_binary_name() else {
            return;
        };
        let dir = workspace_root().unwrap_or_else(|| std::path::PathBuf::from("."));
        let path = dir.join(format!("BENCH_{name}.json"));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let (tp_kind, tp_per_iter) = match r.throughput {
                Some(Throughput::Elements(n)) => ("\"elements\"", n),
                Some(Throughput::Bytes(n)) => ("\"bytes\"", n),
                None => ("null", 0),
            };
            out.push_str(&format!(
                "    {{\"group\": {:?}, \"id\": {:?}, \"min_s\": {:e}, \"median_s\": {:e}, \
                 \"mean_s\": {:e}, \"p50_s\": {:e}, \"p99_s\": {:e}, \"p999_s\": {:e}, \
                 \"iters\": {}, \
                 \"throughput_kind\": {}, \
                 \"throughput_per_iter\": {}, \"per_sec_median\": {:e}}}{}\n",
                r.group,
                r.id,
                r.stats.min,
                r.stats.median,
                r.stats.mean,
                r.stats.p50,
                r.stats.p99,
                r.stats.p999,
                r.stats.iters,
                tp_kind,
                tp_per_iter,
                tp_per_iter as f64 / r.stats.median,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The benchmark binary's logical name: the executable stem minus the
/// `-<16 hex digits>` disambiguation hash cargo appends.
fn bench_binary_name() -> Option<String> {
    let exe = std::env::args().next()?;
    let stem = std::path::Path::new(&exe).file_stem()?.to_str()?;
    Some(strip_cargo_hash(stem).to_string())
}

fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    }
}

/// The nearest ancestor of the current directory containing a `Cargo.lock`
/// — the workspace root when run through `cargo bench`.
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Declares a benchmark group function, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_order_and_json_shape() {
        let mut samples = vec![3.0, 1.0, 2.0];
        let stats = SampleStats::from_samples(&mut samples, 30).unwrap();
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.median, 2.0);
        assert_eq!(stats.mean, 2.0);
        assert_eq!(stats.p50, 2.0);
        assert_eq!(stats.p99, 3.0, "p99 reports the tail sample");
        assert_eq!(stats.p999, 3.0, "p999 collapses to the tail sample");
        let c = Criterion {
            records: vec![Record {
                group: "g".into(),
                id: "dense".into(),
                stats,
                throughput: Some(Throughput::Elements(10)),
            }],
            quick: false,
        };
        let json = c.to_json();
        assert!(json.contains("\"group\": \"g\""), "{json}");
        assert!(json.contains("\"median_s\": 2e0"), "{json}");
        assert!(json.contains("\"p50_s\": 2e0"), "{json}");
        assert!(json.contains("\"p99_s\": 3e0"), "{json}");
        assert!(json.contains("\"p999_s\": 3e0"), "{json}");
        assert!(json.contains("\"throughput_kind\": \"elements\""), "{json}");
    }

    #[test]
    fn binary_name_strips_cargo_hash() {
        assert_eq!(strip_cargo_hash("simulator-0123456789abcdef"), "simulator");
        assert_eq!(strip_cargo_hash("cluster"), "cluster");
        assert_eq!(strip_cargo_hash("routine-compile"), "routine-compile");
    }
}
