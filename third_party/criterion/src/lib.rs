//! Offline stub for `criterion`: the group/bench API surface this
//! workspace uses, backed by a plain wall-clock timer. No statistics,
//! baselines, or plots — each benchmark warms up briefly, then reports the
//! mean iteration time (and throughput when configured).

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure_for: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly for the measurement window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measure_for && iters >= 10 {
                self.iters_done = iters;
                self.elapsed = elapsed;
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measure_for: Duration::from_millis(200),
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters_done == 0 {
            println!("{}/{id}: no iterations measured", self.name);
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
        let mut line = format!(
            "{}/{id}: {:>12} per iter ({} iters)",
            self.name,
            format_time(per_iter),
            b.iters_done
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(", {:.3e} elem/s", n as f64 / per_iter));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(", {:.3e} B/s", n as f64 / per_iter));
            }
            None => {}
        }
        println!("{line}");
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op in the stub; accepts and
    /// ignores criterion's CLI arguments, including `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single unnamed-group benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
