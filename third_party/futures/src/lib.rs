//! Offline stub for `futures`: the executor/combinator surface this
//! workspace uses — [`executor::block_on`] and [`future::join_all`] —
//! implemented over `std::task` alone. One `block_on(join_all(requests))`
//! call is how a single host thread drives many in-flight serving requests
//! against the PIM cluster: shard workers complete job tickets and wake the
//! parked thread, which re-polls every request future that registered the
//! woken waker.

/// Executors that run futures to completion on the calling thread.
pub mod executor {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::thread::Thread;

    /// Waker that unparks the thread running [`block_on`].
    struct ThreadWaker {
        thread: Thread,
        /// Set by `wake`, cleared by the executor before polling: a wake
        /// that lands *while* the future is being polled must trigger one
        /// more poll instead of being lost to a stale park.
        notified: AtomicBool,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.notified.store(true, Ordering::Release);
            self.thread.unpark();
        }
    }

    /// Runs `future` to completion on the current thread, parking between
    /// polls until a [`Waker`] registered with the future fires.
    pub fn block_on<F: Future>(future: F) -> F::Output {
        let mut future = pin!(future);
        let thread_waker = Arc::new(ThreadWaker {
            thread: std::thread::current(),
            notified: AtomicBool::new(true),
        });
        let waker = Waker::from(Arc::clone(&thread_waker));
        let mut cx = Context::from_waker(&waker);
        loop {
            while thread_waker.notified.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
                    return out;
                }
            }
            // `unpark` before `park` makes the latter return immediately,
            // so a wake between the `swap` above and this `park` is safe.
            std::thread::park();
            thread_waker.notified.store(true, Ordering::Release);
        }
    }

    /// The wall-clock budget of [`block_on_timeout`] ran out while the
    /// future was still pending.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TimeoutError;

    impl std::fmt::Display for TimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "future did not complete within the timeout")
        }
    }

    impl std::error::Error for TimeoutError {}

    /// Like [`block_on`], but gives up after `timeout` of wall-clock time
    /// with [`TimeoutError`] — the hang detector for tests that drive
    /// possibly-wedged futures (e.g. a serving request against a cluster
    /// under fault injection must either resolve or be declared hung, not
    /// park forever).
    ///
    /// # Errors
    ///
    /// Returns [`TimeoutError`] if the future is still pending when the
    /// timeout elapses. The future is dropped at that point (cancelled).
    pub fn block_on_timeout<F: Future>(
        future: F,
        timeout: std::time::Duration,
    ) -> Result<F::Output, TimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut future = pin!(future);
        let thread_waker = Arc::new(ThreadWaker {
            thread: std::thread::current(),
            notified: AtomicBool::new(true),
        });
        let waker = Waker::from(Arc::clone(&thread_waker));
        let mut cx = Context::from_waker(&waker);
        loop {
            while thread_waker.notified.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
                    return Ok(out);
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TimeoutError);
            }
            // Bounded park: a missed wake can only delay the next poll
            // until the deadline, never past it.
            std::thread::park_timeout(deadline - now);
            thread_waker.notified.store(true, Ordering::Release);
        }
    }
}

/// Future combinators.
pub mod future {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// Future returned by [`join_all`].
    pub struct JoinAll<F: Future> {
        /// `Err(pending)` until done, then `Ok(output)`; boxed so the
        /// combinator itself stays `Unpin` regardless of `F`.
        slots: Vec<Result<F::Output, Pin<Box<F>>>>,
    }

    /// Collects an iterator of futures into one future yielding all their
    /// outputs in input order. Every pending sub-future is polled whenever
    /// the joined future is polled, so they all make progress concurrently
    /// on the driving thread.
    pub fn join_all<I>(iter: I) -> JoinAll<I::Item>
    where
        I: IntoIterator,
        I::Item: Future,
    {
        JoinAll {
            slots: iter.into_iter().map(|f| Err(Box::pin(f))).collect(),
        }
    }

    // Sound: sub-futures are heap-pinned (`Pin<Box<F>>`) and outputs are
    // plain moved values — nothing in `JoinAll` relies on its own address.
    impl<F: Future> Unpin for JoinAll<F> {}

    /// Which side of a [`select2`] race finished first.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Either<A, B> {
        /// The first future won; the second is returned still pending.
        Left(A),
        /// The second future won; the first is returned still pending.
        Right(B),
    }

    /// Future returned by [`select2`].
    pub struct Select2<A: Future, B: Future> {
        a: Option<Pin<Box<A>>>,
        b: Option<Pin<Box<B>>>,
    }

    /// Races two futures: resolves with the output of whichever finishes
    /// first plus the still-pending loser (so the caller can keep driving
    /// it — e.g. racing a serving request against a watchdog without
    /// abandoning either).
    pub fn select2<A: Future, B: Future>(a: A, b: B) -> Select2<A, B> {
        Select2 {
            a: Some(Box::pin(a)),
            b: Some(Box::pin(b)),
        }
    }

    impl<A: Future, B: Future> Unpin for Select2<A, B> {}

    impl<A: Future, B: Future> Future for Select2<A, B> {
        type Output = Either<(A::Output, Pin<Box<B>>), (B::Output, Pin<Box<A>>)>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            let (a, b) = (
                this.a.as_mut().expect("polled after completion"),
                this.b.as_mut().expect("polled after completion"),
            );
            if let Poll::Ready(out) = a.as_mut().poll(cx) {
                return Poll::Ready(Either::Left((out, this.b.take().unwrap())));
            }
            if let Poll::Ready(out) = b.as_mut().poll(cx) {
                return Poll::Ready(Either::Right((out, this.a.take().unwrap())));
            }
            Poll::Pending
        }
    }

    impl<F: Future> Future for JoinAll<F> {
        type Output = Vec<F::Output>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            let mut done = true;
            for slot in &mut this.slots {
                if let Err(fut) = slot {
                    match fut.as_mut().poll(cx) {
                        Poll::Ready(out) => *slot = Ok(out),
                        Poll::Pending => done = false,
                    }
                }
            }
            if !done {
                return Poll::Pending;
            }
            Poll::Ready(
                std::mem::take(&mut this.slots)
                    .into_iter()
                    .map(|slot| match slot {
                        Ok(out) => out,
                        Err(_) => unreachable!("all sub-futures resolved"),
                    })
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::executor::block_on;
    use super::future::join_all;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// Completes on the `n`-th poll, waking itself in between.
    struct CountDown(u32);

    impl Future for CountDown {
        type Output = u32;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
            if self.0 == 0 {
                Poll::Ready(7)
            } else {
                self.0 -= 1;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_ready() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_self_waking() {
        assert_eq!(block_on(CountDown(5)), 7);
    }

    #[test]
    fn block_on_cross_thread_wake() {
        // The waker must survive a move to another thread and unpark the
        // executor — the shape of a shard worker completing a job ticket.
        struct Once(Option<std::sync::mpsc::Receiver<u32>>);
        impl Future for Once {
            type Output = u32;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                let rx = self.0.take().unwrap();
                let waker = cx.waker().clone();
                let (done_tx, done_rx) = std::sync::mpsc::channel();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    done_tx.send(9).unwrap();
                    waker.wake();
                });
                drop(rx);
                self.0 = Some(done_rx);
                Poll::Pending
            }
        }
        // Second poll reads the channel.
        struct Driver(Once, bool);
        impl Future for Driver {
            type Output = u32;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if !self.1 {
                    self.1 = true;
                    let _ = Pin::new(&mut self.0).poll(cx);
                    return Poll::Pending;
                }
                match self.0 .0.as_ref().unwrap().try_recv() {
                    Ok(v) => Poll::Ready(v),
                    Err(_) => {
                        cx.waker().wake_by_ref();
                        Poll::Pending
                    }
                }
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        drop(tx);
        assert_eq!(block_on(Driver(Once(Some(rx)), false)), 9);
    }

    #[test]
    fn join_all_orders_outputs() {
        let futs = (0..4u32).map(|i| async move { i * 10 });
        assert_eq!(block_on(join_all(futs)), vec![0, 10, 20, 30]);
    }

    #[test]
    fn join_all_mixed_latencies() {
        let futs = [CountDown(3), CountDown(0), CountDown(6)];
        assert_eq!(block_on(join_all(futs)), vec![7, 7, 7]);
    }

    #[test]
    fn select2_returns_the_loser_still_pending() {
        use super::future::{select2, Either};
        match block_on(select2(CountDown(0), CountDown(5))) {
            Either::Left((out, loser)) => {
                assert_eq!(out, 7);
                assert_eq!(block_on(loser), 7, "loser keeps driving");
            }
            Either::Right(_) => panic!("slow future won the race"),
        }
        match block_on(select2(CountDown(5), CountDown(0))) {
            Either::Right((out, _)) => assert_eq!(out, 7),
            Either::Left(_) => panic!("slow future won the race"),
        }
    }

    #[test]
    fn block_on_timeout_completes_in_budget() {
        use super::executor::block_on_timeout;
        let out = block_on_timeout(CountDown(5), std::time::Duration::from_secs(5));
        assert_eq!(out, Ok(7));
    }

    #[test]
    fn block_on_timeout_flags_a_hung_future() {
        use super::executor::{block_on_timeout, TimeoutError};
        /// Pending forever, never waking: the shape of a lost completion.
        struct Hang;
        impl Future for Hang {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let out = block_on_timeout(Hang, std::time::Duration::from_millis(50));
        assert_eq!(out, Err(TimeoutError));
    }
}
