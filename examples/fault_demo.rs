//! Deterministic fault-injection demo: a seeded fault schedule (worker
//! crashes + stalls on one shard) runs under a multi-request serving
//! workload, the supervisor respawns the crashed shard worker from its
//! checkpoint+journal, and the gateway's retry machinery absorbs the
//! transient failures — every request still returns the fault-free answer.
//!
//! The example self-checks the recovery counters (faults fired, workers
//! respawned, batches retried, values bit-identical to a clean run) and
//! writes the unified [`MetricsSnapshot`] JSON to the path given as the
//! first argument (default `target/fault_demo_metrics.json`) — the CI
//! fault smoke step validates that file.
//!
//! Run with: `cargo run --release --example fault_demo [metrics.json]`

use futures::executor::block_on;
use pypim::serve::ClusterClient;
use pypim::{
    ClusterOptions, Device, DeviceServeExt, FaultInjector, FaultPlan, FaultProfile, PimConfig,
    RecoveryConfig, Result, ServeConfig,
};
use std::sync::Arc;

const SHARDS: usize = 2;
const REQUESTS: usize = 4;
/// Fixed seed: reproducible schedule, reproducible counters.
const SEED: u64 = 0xC0FFEE;

fn config() -> PimConfig {
    PimConfig::small().with_crossbars(4)
}

/// The request program: `sum(x * 2 + x)` — several execution batches, one
/// read at the very end.
async fn request(client: &ClusterClient, n: usize, seed: f32) -> Result<f32> {
    let data: Vec<f32> = (0..n).map(|i| seed + i as f32 * 0.5).collect();
    let x = client.upload_f32(&data).await?;
    let y = client.full_f32(n, 2.0).await?;
    let xy = client.mul(&x, &y).await?;
    let z = client.add(&xy, &x).await?;
    client.sum_f32(&z).await
}

fn run_workload(gateway: &pypim::Gateway) -> Result<Vec<u32>> {
    let client = gateway.session_with_warps(4)?;
    let mut bits = Vec::new();
    for req in 0..REQUESTS {
        bits.push(block_on(request(&client, 16, req as f32))?.to_bits());
    }
    Ok(bits)
}

fn main() -> Result<()> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/fault_demo_metrics.json".into());

    // Fault-free reference run.
    let clean = Device::cluster(config(), SHARDS)?.serve(ServeConfig::default());
    let expected = run_workload(&clean)?;

    // Seeded schedule confined to shard 0: crashes and stalls early in
    // the job stream (the workload above sends dozens of jobs, so a
    // horizon of 6 guarantees every fault fires).
    let plan = FaultPlan::from_seed(
        SEED,
        &FaultProfile {
            shards: SHARDS,
            single_shard: Some(0),
            worker_crashes: 2,
            worker_stalls: 1,
            max_stall_cycles: 2_000,
            link_drops: 0,
            link_corruptions: 0,
            job_horizon: 6,
            burst_horizon: 4,
        },
    );
    println!("fault plan (seed {SEED:#x}): {plan:?}");
    let injector = Arc::new(FaultInjector::new(plan, SHARDS));
    let dev = Device::cluster_with_options(
        config(),
        SHARDS,
        ClusterOptions {
            recovery: RecoveryConfig::default(),
            fault: Some(Arc::clone(&injector)),
            ..ClusterOptions::default()
        },
    )?;
    let gateway = dev.serve(ServeConfig {
        max_retries: 3,
        ..ServeConfig::default()
    });

    let got = run_workload(&gateway)?;
    assert_eq!(
        got, expected,
        "faulted run diverged from the fault-free reference"
    );

    // --- Self-check the recovery counters.
    let fstats = injector.stats();
    let cstats = dev.cluster_stats()?.expect("cluster stats");
    let gstats = gateway.stats();
    println!(
        "faults injected: {} (crashes {}, stalls {} for {} cycles)",
        fstats.injected(),
        fstats.worker_crashes,
        fstats.worker_stalls,
        fstats.stall_cycles
    );
    println!(
        "workers respawned: {}, instructions replayed: {}, gateway retries: {}",
        cstats.worker_restarts, cstats.replayed_instructions, gstats.retries
    );
    assert!(fstats.injected() >= 1, "no fault fired: {fstats:?}");
    assert!(fstats.worker_crashes >= 1, "no crash fired: {fstats:?}");
    assert!(
        cstats.worker_restarts >= 1,
        "crash fired but no worker was respawned"
    );
    assert!(
        gstats.retries >= 1,
        "crash fired but the gateway never retried"
    );

    // --- Export the unified metrics snapshot for the CI smoke check.
    let snap = gateway.metrics_snapshot()?;
    std::fs::write(&out_path, snap.to_json()).expect("write metrics JSON");
    println!("\nmetrics snapshot:");
    print!("{}", snap.render());
    println!("\nwrote {out_path}");
    println!("ok: all {REQUESTS} requests bit-identical through the fault schedule");
    Ok(())
}
