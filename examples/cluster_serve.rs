//! Request serving on a sharded multi-chip cluster through the `pim-serve`
//! gateway: one host thread drives every client's requests concurrently —
//! no thread per client, no semaphore bounding in-flight work.
//!
//! Each client session owns a private placement window in the warp space
//! (`Gateway::session`), so concurrent requests allocate in disjoint
//! stripes and the window-exhaustion failure mode that used to require a
//! `MAX_IN_FLIGHT` admission bound is structurally gone; the gateway's
//! in-flight budget is batching backpressure, not a memory-safety valve.
//!
//! Observability: telemetry is switched on for the serving run, so the
//! wrap-up is one unified `MetricsSnapshot` across every layer (`serve.*`
//! admission counters and queue-wait histogram, `cluster.*` traffic,
//! `sim.*` profiler) plus a per-session attribution table — modeled
//! cycles, cross-chip words, link cycles, and queue wait, summed from the
//! `RequestId`-tagged spans each session's requests left behind.
//!
//! Run with: `cargo run --release --example cluster_serve`

use futures::executor::block_on;
use futures::future::join_all;
use pypim::driver::ParallelismMode;
use pypim::loadgen::MODELED_CYCLES_PER_SEC;
use pypim::serve::ClusterClient;
use pypim::telemetry::WindowSampler;
use pypim::{Device, DeviceServeExt, InterconnectConfig, PimConfig, Result, ServeConfig};
use std::cell::RefCell;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 2;

/// The per-request program: the paper's Figure 12 function plus a
/// logarithmic reduction — `sum(x * y + x)` — as a *fused* pipeline: the
/// upload, both element-parallel ops, and every reduction level ride one
/// gateway submission, leaving a single read at the end. (The stepwise
/// session API — `client.mul(&x, &y).await` etc. — serves the same
/// programs one op per submission.)
async fn serve_request(client: &ClusterClient, values: &[f32]) -> Result<f32> {
    let mut plan = client.plan();
    let x = plan.upload_f32(values)?;
    let y = plan.full_f32(values.len(), 2.0)?;
    let xy = plan.mul(&x, &y)?;
    let z = plan.add(&xy, &x)?;
    let sum = plan.reduce(&z, pypim::RegOp::Add)?;
    plan.run().await?;
    Ok(client.to_vec_f32(&sum).await?[0])
}

/// Deterministic request payload for client `cid`, request `req`. Values
/// are small dyadic rationals, so float sums are exact in any order and the
/// host-side check below is bit-exact.
fn payload(cid: usize, req: usize, elems: usize) -> Vec<f32> {
    (0..elems)
        .map(|i| ((cid * 31 + req * 7 + i) % 13) as f32 * 0.25)
        .collect()
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() -> Result<()> {
    // Explicit interconnect model: a 128-bit chip-to-chip link with 8
    // cycles of per-message latency, batched-burst staging, and the
    // dependency-aware drain rule (only shards a transfer touches wait).
    let icfg = InterconnectConfig::default();
    let dev = Device::cluster_with_interconnect(
        PimConfig::small(),
        SHARDS,
        ParallelismMode::default(),
        icfg,
    )?;
    println!(
        "cluster: {} chips x {} crossbars x {} rows = {} logical threads",
        dev.shards(),
        dev.config().crossbars / dev.shards(),
        dev.config().rows,
        dev.config().total_threads(),
    );

    // One gateway, one session per client. Window sizing: an even share of
    // the warp space per client, so each request's tensors stay inside its
    // own stripe set (here: 8 warps of 64 threads -> 512-element requests).
    let total_warps = dev.config().crossbars as u32;
    let session_warps = total_warps / CLIENTS as u32;
    let request_elems = session_warps as usize * dev.config().rows;
    let gateway = dev.serve(ServeConfig {
        session_warps,
        ..ServeConfig::default()
    });
    // Record the serving run: admission spans, shard execution slices, and
    // interconnect bursts, each attributed to its RequestId.
    gateway.telemetry().set_enabled(true);
    let clients: Vec<ClusterClient> = (0..CLIENTS)
        .map(|_| gateway.session())
        .collect::<Result<_>>()?;
    println!(
        "gateway: {CLIENTS} sessions x {session_warps}-warp windows, \
         {request_elems}-element requests, no in-flight bound",
    );

    // Windowed time series over the serving run: every request completion
    // checks whether the modeled clock crossed the next window boundary
    // and closes the window if so. All client futures run on this one host
    // thread (block_on), so a RefCell suffices.
    const WINDOW_CYCLES: u64 = 50_000;
    let telemetry = gateway.telemetry().clone();
    let mut sampler = WindowSampler::new(WINDOW_CYCLES);
    sampler.watch_histogram(
        "serve.queue_wait_cycles",
        &telemetry.metrics().histogram("serve.queue_wait_cycles"),
    );
    let sampler = RefCell::new(sampler);
    let gw = &gateway;

    // One host thread drives all clients' requests concurrently.
    let start = Instant::now();
    let outcomes: Vec<Result<(f32, Vec<Duration>)>> =
        block_on(join_all(clients.iter().enumerate().map(|(cid, client)| {
            let sampler = &sampler;
            let telemetry = &telemetry;
            async move {
                let mut acc = 0.0f32;
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for req in 0..REQUESTS_PER_CLIENT {
                    let t0 = Instant::now();
                    acc += serve_request(client, &payload(cid, req, request_elems)).await?;
                    latencies.push(t0.elapsed());
                    let now = telemetry.now();
                    let mut s = sampler.borrow_mut();
                    if s.ready(now) {
                        s.sample(now, gw.metrics_snapshot()?);
                    }
                }
                Ok((acc, latencies))
            }
        })));
    // Close the partial tail window so the table covers the whole run.
    {
        let now = telemetry.now();
        let mut s = sampler.borrow_mut();
        if s.last().map_or(0, |w| w.end) < now {
            s.sample(now, gw.metrics_snapshot()?);
        }
    }

    let mut total = 0.0f32;
    let mut latencies: Vec<Duration> = Vec::new();
    for (cid, outcome) in outcomes.into_iter().enumerate() {
        let (got, lats) = outcome?;
        let want: f32 = (0..REQUESTS_PER_CLIENT)
            .map(|req| {
                payload(cid, req, request_elems)
                    .iter()
                    .map(|v| v * 2.0 + v)
                    .sum::<f32>()
            })
            .sum();
        assert_eq!(got, want, "client {cid} result mismatch");
        total += got;
        latencies.extend(lats);
    }
    let elapsed = start.elapsed();
    latencies.sort();
    println!(
        "served {} requests x {} elements from {} clients in {:.1} ms (sum {total})",
        CLIENTS * REQUESTS_PER_CLIENT,
        request_elems,
        CLIENTS,
        elapsed.as_secs_f64() * 1e3,
    );
    println!(
        "per-request latency: p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms \
         (concurrent requests overlap, so sums exceed wall time)",
        percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&latencies, 0.90).as_secs_f64() * 1e3,
        percentile(&latencies, 0.99).as_secs_f64() * 1e3,
    );
    // One unified metrics snapshot across every layer: serve.* admission
    // counters (incl. the queue-wait/group-size histograms with their
    // p50/p99/p999 tails), cluster.* traffic, sim.* profiler counters.
    println!("\n{}", gateway.metrics_snapshot()?.render());

    // The windowed view of the same run: batch throughput, queue
    // depth/in-flight at each window close, and the *windowed* queue-wait
    // tail (each window's p99 over only that window's submissions, not
    // the run-cumulative figure above).
    println!("windowed time series ({WINDOW_CYCLES}-cycle windows, 1 cycle = 1 us modeled):");
    println!(
        "{}",
        sampler.borrow().render_table(
            MODELED_CYCLES_PER_SEC,
            &["serve.batches"],
            &["serve.queue_depth", "serve.in_flight"],
            &["serve.queue_wait_cycles"],
        )
    );

    // Per-session attribution, summed from the RequestId-tagged spans.
    println!("per-session attribution (modeled cycles):");
    println!(
        "  {:<8} {:>8} {:>10} {:>12} {:>11} {:>11}",
        "session", "requests", "cycles", "cross_words", "link_cyc", "queue_wait"
    );
    for (session, requests, stats) in gateway.session_stats() {
        println!(
            "  s{session:<7} {requests:>8} {:>10} {:>12} {:>11} {:>11}",
            stats.cycles, stats.cross_words, stats.link_cycles, stats.queue_wait
        );
    }

    // Cross-chip traffic demo: shift a whole-memory tensor by one shard's
    // worth of elements, so every moved warp crosses a chip boundary and
    // goes over the modeled interconnect. The sessions' placement windows
    // tile the entire warp space, so release them first — dropping a
    // client returns its reservation.
    drop(clients);
    dev.reset_counters()?;
    let demo_elems = dev.config().total_threads() as usize;
    let t = dev.arange_i32(demo_elems)?;
    let rolled = pypim::shifted(&t, (demo_elems / SHARDS) as i64)?;
    assert_eq!(
        rolled.get_i32(0)?,
        (demo_elems / SHARDS) as i32,
        "cross-chip shift must preserve values"
    );
    println!(
        "\ncross-chip shift over {}-bit links ({} cycle latency):",
        icfg.link_bits, icfg.latency,
    );
    println!("{}", dev.metrics_snapshot()?.render());
    if let Some(stats) = dev.cluster_stats()? {
        println!(
            "modeled end-to-end latency: {} cycles ({} chip critical path + \
             {} link)",
            stats.modeled_latency_cycles(),
            stats.critical_path_cycles(),
            stats.traffic.link_cycles,
        );
    }
    Ok(())
}
