//! Request serving on a sharded multi-chip cluster: many concurrent client
//! threads submit tensor-program "requests" against one `Device::cluster`,
//! whose shard workers execute element-parallel work on all chips at once.
//!
//! Run with: `cargo run --release --example cluster_serve`

use pypim::driver::ParallelismMode;
use pypim::{Device, InterconnectConfig, PimConfig, Result, Tensor};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

const SHARDS: usize = 4;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 2;
/// Whole-memory requests: each spans every chip, so one request's
/// element-parallel work runs on all shard workers at once.
const REQUEST_ELEMS: usize = 4096;
/// Admission control: requests in flight at once. PIM registers are the
/// scarce serving resource — each in-flight request holds a handful of
/// register stripes in its warp window, so a production front end bounds
/// concurrency to what the memory can host and queues the rest.
const MAX_IN_FLIGHT: usize = 2;

/// A minimal counting semaphore (std has none).
struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().unwrap();
        while *p == 0 {
            p = self.available.wait(p).unwrap();
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap() += 1;
        self.available.notify_one();
    }
}

/// The per-request program: the paper's Figure 12 function plus a
/// logarithmic reduction — `sum(x * y + x)`.
fn serve_request(dev: &Device, values: &[f32]) -> Result<f32> {
    let x = dev.from_slice_f32(values)?;
    let y = dev.full_f32(values.len(), 2.0)?;
    let z: Tensor = (&(&x * &y)? + &x)?;
    z.sum_f32()
}

/// Deterministic request payload for client `cid`, request `req`. Values
/// are small dyadic rationals, so float sums are exact in any order and the
/// host-side check below is bit-exact.
fn payload(cid: usize, req: usize) -> Vec<f32> {
    (0..REQUEST_ELEMS)
        .map(|i| ((cid * 31 + req * 7 + i) % 13) as f32 * 0.25)
        .collect()
}

fn main() -> Result<()> {
    // Explicit interconnect model: a 128-bit chip-to-chip link with 8
    // cycles of per-message latency, batched-burst staging, and the
    // dependency-aware drain rule (only shards a transfer touches wait).
    let icfg = InterconnectConfig::default();
    let dev = Device::cluster_with_interconnect(
        PimConfig::small(),
        SHARDS,
        ParallelismMode::default(),
        icfg,
    )?;
    println!(
        "cluster: {} chips x {} crossbars x {} rows = {} logical threads",
        dev.shards(),
        dev.config().crossbars / dev.shards(),
        dev.config().rows,
        dev.config().total_threads(),
    );

    let start = std::time::Instant::now();
    let admission = Arc::new(Semaphore::new(MAX_IN_FLIGHT));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|cid| {
            let dev = dev.clone();
            let admission = Arc::clone(&admission);
            thread::spawn(move || -> Result<f32> {
                let mut acc = 0.0f32;
                for req in 0..REQUESTS_PER_CLIENT {
                    admission.acquire();
                    let result = serve_request(&dev, &payload(cid, req));
                    admission.release();
                    acc += result?;
                }
                Ok(acc)
            })
        })
        .collect();

    let mut total = 0.0f32;
    for (cid, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("client thread panicked")?;
        let want: f32 = (0..REQUESTS_PER_CLIENT)
            .map(|req| payload(cid, req).iter().map(|v| v * 2.0 + v).sum::<f32>())
            .sum();
        assert_eq!(got, want, "client {cid} result mismatch");
        total += got;
    }
    let elapsed = start.elapsed();
    println!(
        "served {} requests x {} elements from {} clients in {:.1} ms (sum {total})",
        CLIENTS * REQUESTS_PER_CLIENT,
        REQUEST_ELEMS,
        CLIENTS,
        elapsed.as_secs_f64() * 1e3,
    );

    if let Some(stats) = dev.cluster_stats() {
        let (hits, misses) = stats.cache_stats();
        println!(
            "telemetry: {} total chip cycles ({} on the busiest shard), \
             routine cache {hits} hits / {misses} misses",
            stats.total_cycles(),
            stats.critical_path_cycles(),
        );
        for s in &stats.shards {
            println!(
                "  shard {}: {} chip cycles, {} issued micro-op cycles, cache {}h/{}m",
                s.shard, s.profiler.cycles, s.issued.total, s.cache_hits, s.cache_misses,
            );
        }
    }

    // Cross-chip traffic demo: shift a whole-memory tensor by one shard's
    // worth of elements, so every moved warp crosses a chip boundary and
    // goes over the modeled interconnect.
    dev.reset_counters();
    let t = dev.arange_i32(REQUEST_ELEMS)?;
    let rolled = pypim::shifted(&t, (REQUEST_ELEMS / SHARDS) as i64)?;
    assert_eq!(
        rolled.get_i32(0)?,
        (REQUEST_ELEMS / SHARDS) as i32,
        "cross-chip shift must preserve values"
    );
    if let Some(stats) = dev.cluster_stats() {
        let t = stats.traffic;
        println!(
            "interconnect ({}-bit links, {} cycle latency): {} messages, \
             {} cross-chip words, {} link cycles; {} barriers drained {} \
             shard queues",
            icfg.link_bits,
            icfg.latency,
            t.messages,
            t.cross_words,
            t.link_cycles,
            t.barriers,
            t.drained_queues,
        );
        println!(
            "modeled end-to-end latency: {} cycles ({} chip critical path + \
             {} link)",
            stats.modeled_latency_cycles(),
            stats.critical_path_cycles(),
            t.link_cycles,
        );
    }
    Ok(())
}
