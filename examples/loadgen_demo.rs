//! Open-loop load generation against the serving gateway, on the modeled
//! clock: a seeded Poisson + burst traffic mix drives a single-chip device
//! past and below its capacity, and the run produces every observability
//! artifact the `pim-loadgen` harness knows how to make:
//!
//! * the windowed time series (throughput / queue depth / in-flight /
//!   windowed latency tails), printed as a table;
//! * the machine-readable `SloReport` JSON (per-window error-budget burn
//!   against a latency target), written to `target/loadgen_slo.json`;
//! * a Perfetto trace with counter tracks (`serve/queue_depth`,
//!   `serve/in_flight`) next to the execution slices, written to
//!   `target/loadgen_trace.json`.
//!
//! The example self-checks the determinism contract: on a single-chip
//! device the whole run executes inline on the driving thread, so a second
//! run from the same seed must produce bit-identical SLO JSON.
//!
//! Run with: `cargo run --release --example loadgen_demo`

use pypim::loadgen::{
    run_slo, ArrivalProfile, ClassSpec, LoadgenConfig, RequestShape, SloConfig, SloReport,
    MODELED_CYCLES_PER_SEC,
};
use pypim::telemetry::render_window_table;
use pypim::{Device, DeviceServeExt, PimConfig, Result, ServeConfig};

fn demo_cfg() -> LoadgenConfig {
    LoadgenConfig {
        seed: 2024,
        horizon_cycles: 1_000_000, // one modeled second
        window_cycles: 100_000,
        classes: vec![
            ClassSpec::new(
                "elementwise",
                RequestShape::Elementwise,
                ArrivalProfile::Poisson { rate: 90.0 },
                16,
            ),
            ClassSpec::new(
                "fused",
                RequestShape::Fused,
                // A burst of 5 lands together every 0.25 modeled seconds on
                // top of the Poisson background — queue-depth spikes that
                // show up in the windowed series and the counter tracks.
                ArrivalProfile::Burst {
                    base: 30.0,
                    burst_size: 5,
                    period_cycles: 250_000,
                },
                16,
            ),
        ],
        sessions_per_class: 2,
        latency_target_cycles: 0, // run_slo sets it from the SLO target
        drain: true,
    }
}

/// One full run on a fresh single-chip device; returns the SLO verdict and
/// the exported Chrome trace.
fn run_once() -> Result<(pypim::loadgen::RunReport, SloReport, String)> {
    let dev = Device::new(PimConfig::small().with_crossbars(8))?;
    let gateway = dev.serve(ServeConfig {
        // Unbounded session queues: overload queues (the open-loop story)
        // instead of fast-failing with `Overloaded`.
        max_queue_depth: 0,
        ..ServeConfig::default()
    });
    let slo = SloConfig {
        target_p99_cycles: 60_000,
        error_budget: 0.05,
    };
    let (report, verdict) = run_slo(&gateway, &demo_cfg(), slo)?;
    let trace = gateway.telemetry().recorder().export_chrome_trace();
    Ok((report, verdict, trace))
}

fn main() -> Result<()> {
    let (report, verdict, trace) = run_once()?;

    println!(
        "open-loop run: {} injected, {} completed ({} in horizon), {} failed, \
         offered {:.0} rps, achieved {:.0} rps",
        report.injected,
        report.completed,
        report.completed_in_horizon,
        report.failed,
        report.offered_rps,
        report.achieved_rps,
    );
    println!(
        "\nwindowed time series ({}-cycle windows, 1 cycle = 1 us modeled):",
        report.window_cycles
    );
    println!(
        "{}",
        render_window_table(
            &report.windows,
            MODELED_CYCLES_PER_SEC,
            &["loadgen.injected", "loadgen.completed"],
            &["serve.queue_depth", "serve.in_flight"],
            &["loadgen.latency_cycles", "serve.queue_wait_cycles"],
        )
    );
    println!("{}", verdict.render());

    // --- Self-checks: the totals balance, the series covers the run, and
    // the trace carries Perfetto counter tracks ("ph":"C" events).
    assert_eq!(report.completed + report.failed, report.injected);
    assert!(report.windows.len() >= 10, "expected ≥10 windows");
    let json = verdict.to_json();
    assert!(json.starts_with("{\"seed\":2024,"), "unexpected JSON head");
    assert!(json.contains("\"windows\":["), "SLO JSON lacks windows");
    assert!(
        trace.contains("\"ph\":\"C\"") && trace.contains("serve/queue_depth"),
        "trace lacks counter tracks"
    );

    // Determinism: a fresh device, same seed — bit-identical SLO JSON.
    let (_, verdict2, _) = run_once()?;
    assert_eq!(json, verdict2.to_json(), "same seed must reproduce the run");
    println!("determinism check: second run reproduced the SLO JSON bit-for-bit");

    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/loadgen_slo.json", &json).expect("write SLO JSON");
    std::fs::write("target/loadgen_trace.json", &trace).expect("write trace JSON");
    println!(
        "wrote target/loadgen_slo.json ({} bytes) and target/loadgen_trace.json \
         ({} bytes — load in https://ui.perfetto.dev)",
        json.len(),
        trace.len(),
    );
    Ok(())
}
