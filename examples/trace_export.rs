//! Perfetto trace export of one served workload: run a crossing request
//! mix through the `pim-serve` gateway with telemetry recording, then dump
//! a Chrome trace-event JSON (`chrome://tracing` / https://ui.perfetto.dev)
//! with one track per shard worker plus the gateway admission and
//! interconnect tracks — every slice tagged with the `RequestId` it is
//! attributed to, on the modeled clock (1 cycle rendered as 1 µs).
//!
//! The example self-checks the attribution story end to end: at least one
//! request's span tree must cover its gateway admission span, a shard
//! worker execution slice, and a cross-chip interconnect burst, all
//! carrying the same id.
//!
//! Run with: `cargo run --release --example trace_export [output.json]`

use futures::executor::block_on;
use futures::future::join_all;
use pypim::serve::ClusterClient;
use pypim::{Device, DeviceServeExt, PimConfig, RequestId, Result, ServeConfig};
use std::collections::BTreeSet;

const SHARDS: usize = 4;
const CLIENTS: usize = 2;
const REQUESTS_PER_CLIENT: usize = 2;

/// The per-request program: `sum(x * y + x)` as one fused gateway
/// submission. The session windows below span two chips each, so the
/// logarithmic reduction's warp moves cross a chip boundary and ride the
/// modeled interconnect.
async fn serve_request(client: &ClusterClient, values: &[f32]) -> Result<f32> {
    let mut plan = client.plan();
    let x = plan.upload_f32(values)?;
    let y = plan.full_f32(values.len(), 2.0)?;
    let xy = plan.mul(&x, &y)?;
    let z = plan.add(&xy, &x)?;
    let sum = plan.reduce(&z, pypim::RegOp::Add)?;
    plan.run().await?;
    Ok(client.to_vec_f32(&sum).await?[0])
}

fn main() -> Result<()> {
    // 4 chips x 4 crossbars x 64 rows -> 16 logical warps, 4 per chip.
    let dev = Device::cluster(PimConfig::small().with_crossbars(4), SHARDS)?;
    let gateway = dev.serve(ServeConfig {
        // Two sessions of 8 warps: each window spans two chips, so every
        // request's reduction crosses the interconnect.
        session_warps: (dev.config().crossbars / 2) as u32,
        ..ServeConfig::default()
    });
    gateway.telemetry().set_enabled(true);

    let clients: Vec<ClusterClient> = (0..CLIENTS)
        .map(|_| gateway.session())
        .collect::<Result<_>>()?;
    let elems = (dev.config().crossbars / 2) * dev.config().rows;
    let sums = block_on(join_all(clients.iter().enumerate().map(
        |(cid, client)| async move {
            let mut acc = 0.0f32;
            for req in 0..REQUESTS_PER_CLIENT {
                let values: Vec<f32> = (0..elems)
                    .map(|i| ((cid * 31 + req * 7 + i) % 13) as f32 * 0.25)
                    .collect();
                acc += serve_request(client, &values).await?;
            }
            Ok::<f32, pypim::CoreError>(acc)
        },
    )));
    for s in sums {
        assert!(s?.is_finite());
    }

    // --- Self-check: one request id must span all three layers.
    let telemetry = gateway.telemetry();
    let tracks = telemetry.recorder().tracks();
    let requests_on = |pred: &dyn Fn(&str) -> bool| -> BTreeSet<RequestId> {
        tracks
            .iter()
            .filter(|(name, _, _)| pred(name))
            .flat_map(|(_, events, _)| events.iter())
            .filter(|e| !e.request.is_untagged())
            .map(|e| e.request)
            .collect()
    };
    let admitted = requests_on(&|n| n == "gateway/admission");
    let executed = requests_on(&|n| n.starts_with("shard-"));
    let bursted = requests_on(&|n| n == "cluster/interconnect");
    let full_tree: Vec<RequestId> = admitted
        .iter()
        .filter(|r| executed.contains(r) && bursted.contains(r))
        .copied()
        .collect();
    assert!(
        !full_tree.is_empty(),
        "no request spans admission + shard exec + interconnect burst \
         (admitted {admitted:?}, executed {executed:?}, bursted {bursted:?})"
    );
    for shard in 0..SHARDS {
        let name = format!("shard-{shard}");
        let events = tracks
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, e, _)| e.len())
            .unwrap_or(0);
        assert!(events > 0, "shard track {name} recorded no slices");
    }
    let witness = full_tree[0];
    println!("request {witness} span tree (modeled cycles):");
    for (name, events, _) in &tracks {
        for e in events.iter().filter(|e| e.request == witness) {
            let detail = match e.detail {
                Some((k, v)) => format!(", {k}={v}"),
                None => String::new(),
            };
            println!("  {name:<22} {:<6} [{} +{}){detail}", e.name, e.ts, e.dur);
        }
    }

    // --- Per-session attribution rollup.
    println!("\nper-session attribution:");
    println!(
        "  {:<8} {:>8} {:>10} {:>12} {:>11} {:>11}",
        "session", "requests", "cycles", "cross_words", "link_cyc", "queue_wait"
    );
    for (session, requests, stats) in gateway.session_stats() {
        println!(
            "  s{session:<7} {requests:>8} {:>10} {:>12} {:>11} {:>11}",
            stats.cycles, stats.cross_words, stats.link_cycles, stats.queue_wait
        );
    }

    // --- Export.
    let trace = telemetry.recorder().export_chrome_trace();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_export.json".into());
    std::fs::write(&path, &trace).expect("write trace JSON");
    println!(
        "\nwrote {path}: {} bytes, {} tracks — load in https://ui.perfetto.dev",
        trace.len(),
        tracks.len(),
    );
    Ok(())
}
