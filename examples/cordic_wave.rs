//! CORDIC trigonometry inside the memory (§VI-A "CORDIC Sine/Cosine"):
//! computes a sine table for a full wave using only PIM tensor operations
//! and renders it as ASCII art, comparing against the host's `sin`.
//!
//! Run with: `cargo run --release --example cordic_wave`

use pypim::{Device, PimConfig, Result};

fn main() -> Result<()> {
    let dev = Device::new(PimConfig::small())?;
    let n = 64;
    // Angles across [-pi/2, pi/2] (the CORDIC convergence domain).
    let angles: Vec<f32> = (0..n)
        .map(|i| -std::f32::consts::FRAC_PI_2 + std::f32::consts::PI * i as f32 / (n - 1) as f32)
        .collect();
    let theta = dev.from_slice_f32(&angles)?;

    dev.reset_counters()?;
    let (sin_t, cos_t) = theta.sin_cos()?;
    let cycles = dev.cycles()?;

    let sin_v = sin_t.to_vec_f32()?;
    let cos_v = cos_t.to_vec_f32()?;

    println!("CORDIC sine across [-π/2, π/2] ({n} angles, {cycles} PIM cycles):\n");
    let width = 41;
    for (i, &a) in angles.iter().enumerate() {
        let col = ((sin_v[i] + 1.0) / 2.0 * (width - 1) as f32).round() as usize;
        let mut line = vec![b' '; width];
        line[width / 2] = b'|';
        line[col] = b'*';
        println!("{:>6.2} {}", a, String::from_utf8(line).expect("ascii"));
    }

    // Accuracy report vs the host libm.
    let mut max_err = 0f32;
    for (i, &a) in angles.iter().enumerate() {
        max_err = max_err.max((sin_v[i] - a.sin()).abs());
        max_err = max_err.max((cos_v[i] - a.cos()).abs());
    }
    println!("\nmax |error| vs host sin/cos: {max_err:.2e}");
    println!(
        "identity check: sin²+cos² ∈ [{:.6}, {:.6}]",
        sin_v
            .iter()
            .zip(&cos_v)
            .map(|(s, c)| s * s + c * c)
            .fold(f32::MAX, f32::min),
        sin_v
            .iter()
            .zip(&cos_v)
            .map(|(s, c)| s * s + c * c)
            .fold(f32::MIN, f32::max),
    );
    Ok(())
}
