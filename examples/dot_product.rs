//! Hybrid CPU–PIM development (§V-A): a dot product where the
//! element-parallel multiply and the logarithmic reduction run inside the
//! memory, composed with ordinary Rust control flow — plus a comparison
//! tensor workload (counting elements above a threshold) mixing dtypes.
//!
//! Run with: `cargo run --release --example dot_product`

use pypim::{Device, PimConfig, RegOp, Result};
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let dev = Device::new(PimConfig::small())?;
    let n = 512;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let av: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    let bv: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();

    let a = dev.from_slice_f32(&av)?;
    let b = dev.from_slice_f32(&bv)?;

    // dot(a, b): element-parallel multiply, then log-time sum.
    dev.reset_counters()?;
    let dot = (&a * &b)?.sum_f32()?;
    println!("dot(a, b) = {dot:.4}  ({} PIM cycles)", dev.cycles()?);

    // Host-side reference using the same pairwise reduction order (float
    // addition is not associative, so mirror the in-memory tree).
    let mut tree: Vec<f32> = av.iter().zip(&bv).map(|(x, y)| x * y).collect();
    tree.resize(tree.len().next_power_of_two(), 0.0);
    while tree.len() > 1 {
        let half = tree.len() / 2;
        tree = (0..half).map(|i| tree[i] + tree[i + half]).collect();
    }
    println!("host pairwise reference = {:.4}", tree[0]);
    assert_eq!(dot, tree[0], "in-memory reduction must match the host tree");

    // Count elements above a threshold: comparison produces an int32 0/1
    // tensor that sums directly.
    let threshold = dev.full_f32(n, 1.0)?;
    let above = a.gt(&threshold)?; // int32 zeros/ones
    let count = above.sum_i32()?;
    let expect = av.iter().filter(|&&x| x > 1.0).count() as i32;
    println!("elements > 1.0: {count} (host: {expect})");
    assert_eq!(count, expect);

    // The same mask drives a select: clamp a to at most 1.0.
    let clamped = above.select(&threshold, &a)?;
    let cv = clamped.to_vec_f32()?;
    assert!(cv.iter().all(|&x| x <= 1.0));
    println!(
        "clamp via mux: max = {:.4}",
        cv.iter().fold(f32::MIN, |m, &x| m.max(x))
    );

    // Integer path: parity count via bitwise ops.
    let ints = dev.from_slice_i32(&(0..n as i32).map(|i| i * 7 + 3).collect::<Vec<_>>())?;
    let one = dev.full_i32(n, 1)?;
    let odd_mask = ints.binary(RegOp::And, &one)?;
    println!("odd values: {} / {n}", odd_mask.sum_i32()?);
    Ok(())
}
