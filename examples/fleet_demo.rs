//! Deterministic fleet chaos demo: a seeded host-fault schedule — the
//! *leader* host crashes mid-load and a second host later stalls past the
//! lease — runs under open-loop traffic against a three-host fleet. The
//! lease elector detects the lapses on the modeled clock, re-elects the
//! lowest surviving host, and fails the orphaned sessions over to the
//! survivors; in-flight results from dead placements are discarded and
//! re-issued, so every injected request still resolves.
//!
//! The example self-checks the control-plane counters (elections,
//! failovers, orphaned sessions, re-issues), writes the fleet-wide
//! [`pypim::telemetry`] metrics snapshot — `fleet.*` plus per-host
//! `host<i>/…` namespaces — to the first argument (default
//! `target/fleet_demo_metrics.json`), and writes the Perfetto trace of
//! the `fleet/control` track (election + failover spans) to the second
//! (default `target/fleet_demo_trace.json`). The CI fleet chaos smoke
//! step validates both files.
//!
//! Run with: `cargo run --release --example fleet_demo [metrics.json] [trace.json]`

use pypim::fleet::{Fleet, FleetConfig};
use pypim::loadgen::{run_fleet, ArrivalProfile, ClassSpec, LoadgenConfig, RequestShape};
use pypim::{HostFaultPlan, PimConfig, Result, ServeConfig};

const HOSTS: usize = 3;
/// Modeled cycle the leader (host 0 — lowest index wins the first
/// election) is killed at: mid-horizon, with sessions placed and load in
/// flight.
const LEADER_KILL_CYCLE: u64 = 150_000;
/// A second, recoverable outage: host 2 stops heartbeating for longer
/// than the lease TTL, fails over, then rejoins empty.
const STALL_CYCLE: u64 = 250_000;
const STALL_CYCLES: u64 = 40_000;
/// Fixed seed: reproducible arrivals, reproducible counters.
const SEED: u64 = 0xF1EE7;

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let metrics_path = args
        .next()
        .unwrap_or_else(|| "target/fleet_demo_metrics.json".into());
    let trace_path = args
        .next()
        .unwrap_or_else(|| "target/fleet_demo_trace.json".into());

    let plan = HostFaultPlan::none()
        .crash_at(0, LEADER_KILL_CYCLE)
        .stall_at(2, STALL_CYCLE, STALL_CYCLES);
    println!("host fault plan (seed {SEED:#x}): {plan:?}");

    let fleet = Fleet::new(FleetConfig {
        hosts: HOSTS,
        chip: PimConfig::small().with_crossbars(8),
        serve: ServeConfig {
            max_queue_depth: 0, // open loop: overload queues, never rejects
            ..ServeConfig::default()
        },
        fault: plan,
        ..FleetConfig::default()
    })?;
    fleet.set_telemetry_enabled(true); // record election/failover spans
    let leader = fleet.leader().expect("initial election");
    println!(
        "initial leader: host {} (epoch {})",
        leader.holder, leader.epoch
    );
    assert_eq!(leader.holder, 0, "lowest eligible index wins a free lease");

    let cfg = LoadgenConfig {
        seed: SEED,
        horizon_cycles: 300_000,
        window_cycles: 60_000,
        classes: vec![
            ClassSpec::new(
                "fused",
                RequestShape::Fused,
                ArrivalProfile::Poisson { rate: 80.0 },
                16,
            ),
            ClassSpec::new(
                "reduction",
                RequestShape::Reduction,
                ArrivalProfile::Poisson { rate: 20.0 },
                16,
            ),
        ],
        sessions_per_class: 2,
        latency_target_cycles: 0,
        drain: true,
    };
    let report = run_fleet(&fleet, &cfg)?;

    println!(
        "\ninjected {} → completed {} (failed {}), {:.0} rps offered / {:.0} rps achieved",
        report.injected, report.completed, report.failed, report.offered_rps, report.achieved_rps
    );
    println!(
        "control plane: {} leader change(s), {} failover(s), {} orphaned session(s), \
         {} re-issued attempt(s), failover detection p99 {} cycles",
        report.fleet.leader_changes,
        report.fleet.failovers,
        report.fleet.orphaned_sessions,
        report.reissued,
        report.failover_cycles.p99,
    );

    // --- Self-check: the schedule's effects, exactly.
    assert_eq!(report.completed + report.failed, report.injected);
    assert_eq!(report.failed, 0, "two survivors must absorb the load");
    assert_eq!(
        report.fleet.failovers, 2,
        "one crash + one over-TTL stall → exactly two failovers"
    );
    assert_eq!(
        report.fleet.leader_changes, 1,
        "only the leader kill changes leadership mid-run"
    );
    assert!(report.fleet.orphaned_sessions >= 1, "no session moved");
    assert!(report.failover_cycles.count >= 2);
    let lease = fleet.leader().expect("a survivor holds the lease");
    assert_eq!(lease.holder, 1, "host 1 must take over from host 0");
    assert_eq!(lease.epoch, 1, "handover bumps the epoch");
    assert_eq!(fleet.live_hosts(), 2, "host 0 dead, host 2 rejoined");

    // --- Export the fleet-wide metrics snapshot (fleet.* + host<i>/…).
    let snap = fleet.metrics_snapshot()?;
    for host in 0..HOSTS {
        let key = format!("host{host}/serve.sessions");
        assert!(
            snap.counters.contains_key(&key),
            "snapshot lacks the {key} namespace"
        );
    }
    std::fs::write(&metrics_path, snap.to_json()).expect("write metrics JSON");

    // --- Export the Perfetto trace of the control plane.
    let trace = fleet.export_chrome_trace();
    assert!(trace.contains("fleet/control"), "no control-plane track");
    assert!(trace.contains("election"), "no election span recorded");
    assert!(trace.contains("failover"), "no failover span recorded");
    std::fs::write(&trace_path, &trace).expect("write trace JSON");

    println!("\nwrote {metrics_path} and {trace_path}");
    println!("ok: load survived a leader kill and a lease-lapsing stall");
    Ok(())
}
