//! The end-to-end example program of the paper's Figure 12: tensor
//! initialization, element writes, a custom function combining parallel
//! multiplication and addition, views, and logarithmic reduction — all
//! executing inside the simulated PIM memory.
//!
//! Run with: `cargo run --release --example quickstart`

use pypim::{Device, PimConfig, Result, Tensor};

/// Parallel multiplication and addition (the paper's `myFunc`).
fn my_func(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    &(a * b)? + a
}

fn main() -> Result<()> {
    // A small simulated PIM memory. PimConfig::paper() holds the paper's
    // 8 GB Table III geometry; tests and demos use smaller ones.
    let dev = Device::new(PimConfig::small())?;
    println!(
        "simulated PIM: {} crossbars x {} rows x {} bits ({} threads)",
        dev.config().crossbars,
        dev.config().rows,
        dev.config().row_bits(),
        dev.config().total_threads(),
    );

    // Tensor initialization (Figure 12 uses 2^20 elements; scaled down to
    // the demo geometry).
    let n = 1024usize.min(dev.config().total_threads() as usize);
    let mut x = dev.zeros_f32(n)?;
    let mut y = dev.zeros_f32(n)?;
    x.set_f32(4, 8.0)?;
    y.set_f32(4, 0.5)?;
    x.set_f32(5, 20.0)?;
    y.set_f32(5, 1.0)?;
    x.set_f32(8, 10.0)?;
    y.set_f32(8, 1.0)?;

    // Custom function call: tensors pass by reference, and the arithmetic
    // runs element-parallel across every thread holding the data.
    let z = my_func(&x, &y)?;

    // Logarithmic-time reduction of the even indices.
    let even_sum = z.slice_step(0, n, 2)?.sum_f32()?;
    println!("z[::2].sum() = {even_sum}  (expected 32 = 8*1.5 + 10*2)");

    // Profiling: PIM cycles consumed so far (the pim.Profiler() facility).
    let p = dev.profiler()?;
    println!(
        "PIM cycles: {} ({} logic ops, {} moves, {} writes, {} reads)",
        p.cycles, p.ops.logic_h, p.ops.mv, p.ops.write, p.ops.read
    );
    let issued = dev.issued()?;
    println!(
        "distance from theoretical PIM: {:.1}%",
        100.0 * (issued.total as f64 / issued.logic as f64 - 1.0)
    );
    Ok(())
}
