//! Data-analytics flavored demo: min–max normalization, polynomial
//! evaluation (Horner form), and running totals — all element-parallel in
//! the simulated PIM memory, composing the library's reductions, scans,
//! and arithmetic.
//!
//! Run with: `cargo run --release --example normalize`

use pypim::{Device, PimConfig, Result, Tensor};
use rand::{Rng, SeedableRng};

/// Evaluates `c0 + c1·x + c2·x² + …` with Horner's method — one fused
/// multiply-add chain of element-parallel tensor ops.
fn horner(x: &Tensor, coeffs: &[f32]) -> Result<Tensor> {
    let dev = x.device().clone();
    let mut acc = dev.full_f32(x.len(), *coeffs.last().expect("nonempty"))?;
    for &c in coeffs.iter().rev().skip(1) {
        acc = (&(&acc * x)? + c)?;
    }
    Ok(acc)
}

fn main() -> Result<()> {
    let dev = Device::new(PimConfig::small())?;
    let n = 256;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let raw: Vec<f32> = (0..n).map(|_| rng.gen_range(-40.0f32..120.0)).collect();
    let x = dev.from_slice_f32(&raw)?;

    // Min–max normalization: (x - min) / (max - min), computed with
    // logarithmic reductions and broadcast scalars.
    let (lo, hi) = (x.min_f32()?, x.max_f32()?);
    let norm = (&(&x - lo)? * (1.0 / (hi - lo)))?;
    let nv = norm.to_vec_f32()?;
    println!("normalized {n} samples: min {lo:.2}, max {hi:.2}");
    println!(
        "  normalized range: [{:.4}, {:.4}]",
        nv.iter().fold(f32::MAX, |a, &b| a.min(b)),
        nv.iter().fold(f32::MIN, |a, &b| a.max(b)),
    );
    assert!(nv.iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)));

    // Polynomial evaluation on the normalized data: a smooth-step curve
    // 3t² - 2t³ applied to every element at once.
    let smooth = horner(&norm, &[0.0, 0.0, 3.0, -2.0])?;
    let sv = smooth.to_vec_f32()?;
    for (i, &t) in nv.iter().enumerate().take(4) {
        println!("  smoothstep({t:.3}) = {:.4}", sv[i]);
        let expect = 3.0 * t * t + -2.0 * t * t * t;
        assert!((sv[i] - expect).abs() < 1e-5);
    }

    // Running totals via the in-memory Hillis–Steele scan.
    let firsts = x.slice(0, 8)?;
    let totals = firsts.cumsum()?.to_vec_f32()?;
    println!(
        "\nfirst 8 samples:   {:?}",
        &raw[..8]
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "running totals:    {:?}",
        totals
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    println!("\ntotal PIM cycles: {}", dev.cycles()?);
    Ok(())
}
