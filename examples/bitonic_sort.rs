//! In-memory bitonic sorting (§VI-A "Sorting"): sorts a random tensor with
//! the element-parallel compare-and-swap network, demonstrates sorting a
//! *view* in place (the paper's `x[::2].sort()`), and reports the PIM cycle
//! cost.
//!
//! Run with: `cargo run --release --example bitonic_sort`

use pypim::{Device, PimConfig, Result};
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let dev = Device::new(PimConfig::small().with_crossbars(16).with_rows(64))?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // Sort a full tensor.
    let n = 256;
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
    let t = dev.from_slice_f32(&data)?;
    dev.reset_counters()?;
    let sorted = t.sorted()?;
    let cycles = dev.cycles()?;
    let out = sorted.to_vec_f32()?;
    assert!(
        out.windows(2).all(|w| w[0] <= w[1]),
        "output must be ascending"
    );
    println!("sorted {n} floats in {cycles} PIM cycles");
    println!("  first: {:?}", &out[..4]);
    println!("  last:  {:?}", &out[n - 4..]);

    // Sort only the even-index view, leaving odd elements untouched
    // (the paper's interactive `x[::2].sort()` session).
    let vals: Vec<f32> = (0..16).map(|_| rng.gen_range(-9.0f32..9.0)).collect();
    let x = dev.from_slice_f32(&vals)?;
    let mut even = x.even()?;
    even.sort()?;
    let after = x.to_vec_f32()?;
    println!("\nx[::2].sort() — odd positions untouched:");
    println!("  before: {vals:5.1?}");
    println!("  after:  {after:5.1?}");
    for i in (1..16).step_by(2) {
        assert_eq!(after[i], vals[i], "odd elements must be untouched");
    }
    let evens: Vec<f32> = after.iter().copied().step_by(2).collect();
    assert!(evens.windows(2).all(|w| w[0] <= w[1]));
    println!("  even positions ascending: ok");
    Ok(())
}
